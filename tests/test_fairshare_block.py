"""Block-resolved fair-share commits against the per-start oracles.

:class:`~repro.gridsim.fairshare.FairShareVectorComputingElement`
resolves background-only runs as fused blocks (``block_commits=True``).
The contract: every float it commits — decayed usage, charge, decision
instant, winner — is **bit-identical** to the per-start
:class:`~repro.gridsim.fairshare.FairShareState`-method loop
(``block_commits=False``), which in turn matches the event-driven
:class:`~repro.gridsim.fairshare.FairShareComputingElement` wherever the
RNG streams align.  This suite drives identical operation scripts
through both commit paths (hand-built boundary scenarios plus seeded
random interleavings), runs grid-level probe traces over the full
engine × WMS matrix, and pins the wake predictor's purity and its
scratch-fork reuse.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np
import pytest

from repro.core.strategies import MultipleSubmission, SingleResubmission
from repro.gridsim import (
    FairShareVectorComputingElement,
    FaultModel,
    GridConfig,
    GridSimulator,
    Job,
    JobState,
    ProbeExperiment,
    SiteConfig,
    Simulator,
)

SHARES3 = (("biomed", 0.5), ("atlas", 0.3), ("cms", 0.2))
HALFLIVES = [86_400.0, 3600.0, math.inf]
HL_IDS = ["day", "hour", "inf"]


def make_site(halflife: float, n_cores: int = 2, block: bool = True):
    sim = Simulator()
    site = FairShareVectorComputingElement(
        "fs", n_cores, sim, vo_shares=SHARES3, fairshare_halflife=halflife
    )
    site.block_commits = block
    return sim, site


def site_state(sim: Simulator, site: FairShareVectorComputingElement) -> tuple:
    """Exact observable + fair-share state (floats compared bitwise)."""
    site._advance()
    fs = site.fairshare
    return (
        sim.now,
        site.jobs_started,
        site.jobs_completed,
        site.jobs_failed_bh,
        site.busy_cores,
        site.queue_length,
        tuple(site._bgc),
        tuple(fs._usage),
        fs._last,
        tuple(sorted(site._core_free)),
    )


def job_trace(jobs: list[Job]) -> list[tuple]:
    return [(j.state.value, j.start_time, j.end_time) for j in jobs]


def apply_script(sim: Simulator, site, script) -> list[Job]:
    """Replay one operation script; returns the client jobs it created."""
    jobs: list[Job] = []
    for op in script:
        kind = op[0]
        if kind == "run":
            sim.run_until(op[1])
        elif kind == "feed":
            _, times, runtimes, vos = op
            site.feed_background(list(times), list(runtimes), list(vos))
        elif kind == "client":
            _, t, vo, runtime = op
            sim.run_until(t)
            job = Job(runtime=runtime, vo=vo)
            site.enqueue(job)
            jobs.append(job)
        elif kind == "cancel":
            _, t, idx = op
            sim.run_until(t)
            site.cancel(jobs[idx])
        elif kind == "hole":
            _, t, flag = op
            sim.run_until(t)
            if flag:
                site.begin_black_hole()
            else:
                site.end_black_hole()
        else:  # pragma: no cover - script typo guard
            raise AssertionError(kind)
    return jobs


def assert_paths_agree(script, halflife: float, n_cores: int = 2) -> None:
    states, traces = [], []
    for block in (True, False):
        sim, site = make_site(halflife, n_cores=n_cores, block=block)
        jobs = apply_script(sim, site, script)
        states.append(site_state(sim, site))
        traces.append(job_trace(jobs))
    assert states[0] == states[1]
    assert traces[0] == traces[1]


class TestBlockVsScalarScripts:
    """Hand-built boundary scenarios, identical on both commit paths."""

    @pytest.mark.parametrize("halflife", HALFLIVES, ids=HL_IDS)
    def test_mixed_interleaving(self, halflife):
        script = [
            ("feed", [1.0, 2.0, 4.0, 6.0], [30.0, 25.0, 40.0, 10.0], [0, 1, 2, 0]),
            ("client", 3.0, "atlas", 15.0),
            ("run", 10.0),
            ("feed", [12.0, 13.0], [20.0, 20.0], [1, 0]),
            ("client", 14.0, "cms", 5.0),
            ("client", 14.0, "biomed", 7.0),
            ("run", 200.0),
        ]
        assert_paths_agree(script, halflife)

    @pytest.mark.parametrize("halflife", HALFLIVES, ids=HL_IDS)
    def test_exact_tie_background_beats_client(self, halflife):
        """A background head and a client share the exact arrival float."""
        script = [
            ("feed", [5.0, 5.0], [50.0, 50.0], [0, 1]),
            ("client", 5.0, "biomed", 10.0),
            ("run", 300.0),
        ]
        assert_paths_agree(script, halflife, n_cores=1)

    @pytest.mark.parametrize("halflife", HALFLIVES, ids=HL_IDS)
    def test_cancel_mid_block(self, halflife):
        """A queued client cancelled between commits leaves a husk the
        block resolver must skip without perturbing the float ladder."""
        script = [
            ("feed", [1.0, 2.0, 3.0, 8.0, 9.0], [40.0] * 5, [0, 1, 2, 0, 1]),
            ("client", 4.0, "cms", 20.0),
            ("client", 4.5, "biomed", 20.0),
            ("cancel", 5.0, 0),
            ("run", 6.0),
            ("cancel", 6.5, 1),
            ("run", 400.0),
        ]
        assert_paths_agree(script, halflife, n_cores=1)

    @pytest.mark.parametrize("block", [True, False], ids=["block", "scalar"])
    def test_cancel_lands_inside_own_enqueue_prewalk(self, block):
        """A sibling settle cancels the very job being enqueued.

        ``enqueue`` stamps state/site/queue_time *before* its pre-walk,
        so a start committed by that walk can settle a sibling copy and
        cancel the mid-enqueue job — which is then appended to its VO
        FIFO already CANCELLED, right after the walk re-synced the head
        cache.  The husk must never be installed as the cached client
        head (it would misprice the next decision instant) and must be
        skipped at pop time (it must never *start*).
        """
        sim, site = make_site(86_400.0, n_cores=1, block=block)
        site._defer_wake = lambda: None  # force fully lazy commits
        j0 = Job(runtime=50.0, vo="biomed")
        site.enqueue(j0)  # takes the only core, 0 -> 50
        j1 = Job(runtime=30.0, vo="biomed")
        site.enqueue(j1)  # queued behind j0, starts at 50
        j2 = Job(runtime=20.0, vo="biomed")
        cancelled: list[bool] = []

        def settle(job: Job) -> None:
            if job is j1 and not cancelled:
                cancelled.append(site.cancel(j2))

        site.on_start = settle
        sim.run_until(60.0)
        site.enqueue(j2)  # pre-walk commits j1 -> settle cancels j2
        assert cancelled == [True]
        assert j2.state is JobState.CANCELLED
        sim.run_until(85.0)
        j3 = Job(runtime=5.0, vo="biomed")
        site.enqueue(j3)  # must start past the leading husk
        assert j1.start_time == 50.0
        assert math.isnan(j2.start_time)  # the husk never started
        assert j3.start_time == 85.0
        assert site._vo_husks == [0, 0, 0]
        assert site._live_clients == 0
        assert site.queue_length == 0

    @pytest.mark.parametrize("halflife", HALFLIVES, ids=HL_IDS)
    def test_black_hole_racing_block_boundary(self, halflife):
        """The hole flips exactly at a pending head's arrival instant."""
        script = [
            ("feed", [1.0, 5.0, 10.0, 30.0, 35.0], [60.0] * 5, [0, 1, 0, 2, 1]),
            ("client", 2.0, "atlas", 25.0),
            ("hole", 10.0, True),
            ("client", 15.0, "biomed", 10.0),
            ("hole", 30.0, False),
            ("feed", [40.0, 41.0], [15.0, 15.0], [2, 0]),
            ("client", 42.0, "cms", 5.0),
            ("run", 500.0),
        ]
        assert_paths_agree(script, halflife)

    @pytest.mark.parametrize("seed", [3, 11, 29, 47])
    @pytest.mark.parametrize("halflife", HALFLIVES, ids=HL_IDS)
    def test_random_interleavings(self, seed, halflife):
        """Seeded random scripts: feeds, clients, cancels, mixed order."""
        rng = np.random.default_rng(seed)
        script, t = [], 0.0
        n_clients = 0
        for _ in range(12):
            t += float(rng.uniform(1.0, 40.0))
            kind = rng.integers(0, 3)
            if kind == 0:
                k = int(rng.integers(1, 6))
                times = np.sort(t + rng.uniform(0.0, 60.0, k)).tolist()
                runtimes = rng.uniform(5.0, 80.0, k).tolist()
                vos = rng.integers(0, 3, k).tolist()
                script.append(("feed", times, runtimes, vos))
            elif kind == 1:
                vo = ("biomed", "atlas", "cms")[int(rng.integers(0, 3))]
                script.append(("client", t, vo, float(rng.uniform(5.0, 50.0))))
                n_clients += 1
            elif n_clients:
                script.append(("cancel", t, int(rng.integers(0, n_clients))))
        script.append(("run", t + 600.0))
        assert_paths_agree(script, halflife)


def multi_vo_config(site_engine: str, **kw) -> GridConfig:
    defaults = dict(
        sites=(
            SiteConfig(
                "a", 8, utilization=0.9, runtime_median=600.0, vo_shares=SHARES3
            ),
            SiteConfig(
                "b",
                16,
                utilization=0.95,
                runtime_median=900.0,
                vo_shares=SHARES3[:2],
            ),
        ),
        matchmaking_median=30.0,
        faults=FaultModel(p_lost=0.02, p_stuck=0.02),
        site_engine=site_engine,
    )
    defaults.update(kw)
    return GridConfig(**defaults)


def grid_fingerprint(grid: GridSimulator) -> tuple:
    return (
        grid.now,
        tuple(s.queue_length for s in grid.sites),
        tuple(s.busy_cores for s in grid.sites),
        tuple(s.jobs_started for s in grid.sites),
        tuple(s.jobs_completed for s in grid.sites),
        tuple(
            tuple(s.fairshare._usage)
            for s in grid.sites
            if hasattr(s, "fairshare")
        ),
    )


def set_block_commits(grid: GridSimulator, flag: bool) -> None:
    for site in grid.sites:
        if isinstance(site, FairShareVectorComputingElement):
            site.block_commits = flag


class TestGridLevelEquivalence:
    """Full-grid probe traces across the engine × WMS matrix."""

    @pytest.mark.parametrize("wms_engine", ["batched", "event"])
    @pytest.mark.parametrize("seed", [17, 59])
    def test_three_way_probe_traces(self, wms_engine, seed):
        """block == scalar == event oracle, bit for bit."""
        traces, fps = [], []
        for flavour in ("block", "scalar", "event"):
            engine = "event" if flavour == "event" else "vector"
            cfg = multi_vo_config(engine, wms_engine=wms_engine)
            grid = GridSimulator(cfg, seed=seed)
            if flavour == "scalar":
                set_block_commits(grid, False)
            grid.warm_up(3600.0)
            traces.append(
                ProbeExperiment(grid, n_slots=6, timeout=4000.0).run(40_000.0)
            )
            fps.append(grid_fingerprint(grid))
        for other in (1, 2):
            np.testing.assert_array_equal(
                traces[0].submit_times, traces[other].submit_times
            )
            np.testing.assert_array_equal(
                traces[0].latencies, traces[other].latencies
            )
        # usage vectors only exist on the vector flavours
        assert fps[0] == fps[1]

    @pytest.mark.parametrize("halflife", [3600.0, math.inf], ids=["hour", "inf"])
    def test_halflife_extremes_block_vs_scalar(self, halflife):
        outs = []
        for flag in (True, False):
            cfg = multi_vo_config("vector", fairshare_halflife=halflife)
            grid = GridSimulator(cfg, seed=31)
            set_block_commits(grid, flag)
            grid.warm_up(6 * 3600.0)
            out = ProbeExperiment(grid, n_slots=4, timeout=3000.0).run(30_000.0)
            outs.append((grid_fingerprint(grid), out.latencies.tolist()))
        assert outs[0] == outs[1]

    @pytest.mark.parametrize("wms_engine", ["batched", "event"])
    def test_burst_strategies_block_vs_scalar(self, wms_engine):
        """Sibling bursts cancel mid-block on every start; traces must
        stay bit-identical with block commits on and off."""
        from repro.gridsim import run_strategy_on_grid

        outs = []
        for flag in (True, False):
            cfg = multi_vo_config("vector", wms_engine=wms_engine)
            grid = GridSimulator(cfg, seed=43)
            set_block_commits(grid, flag)
            grid.warm_up(3600.0)
            outs.append(
                run_strategy_on_grid(
                    grid,
                    MultipleSubmission(b=3, t_inf=2500.0),
                    30,
                    task_interval=250.0,
                    runtime=90.0,
                )
            )
        a, b = outs
        np.testing.assert_array_equal(a.j, b.j)
        np.testing.assert_array_equal(a.jobs_submitted, b.jobs_submitted)
        assert a.gave_up == b.gave_up

    def test_snapshot_restore_preserves_equivalence(self):
        """Fork a warmed block-commit grid; the fork must keep matching
        a scalar twin forked from the same pickled state."""
        cfg = multi_vo_config("vector")
        grid = GridSimulator(cfg, seed=61)
        grid.warm_up(7200.0)
        snap = grid.snapshot()
        a, b = snap.restore(), snap.restore()
        set_block_commits(b, False)
        ta = ProbeExperiment(a, n_slots=4, timeout=3000.0).run(20_000.0)
        tb = ProbeExperiment(b, n_slots=4, timeout=3000.0).run(20_000.0)
        np.testing.assert_array_equal(ta.latencies, tb.latencies)
        assert grid_fingerprint(a) == grid_fingerprint(b)


class TestWakePredictor:
    """Purity and scratch reuse of `_predict_next_client_start`."""

    def scenario(self):
        sim, site = make_site(86_400.0, n_cores=1)
        site.feed_background([0.5, 1.0, 2.0], [30.0, 25.0, 40.0], [0, 1, 2])
        sim.run_until(3.0)
        job = Job(runtime=10.0, vo="atlas")
        site.enqueue(job)
        return sim, site, job

    def test_prediction_is_pure(self):
        sim, site, job = self.scenario()
        fs = site.fairshare
        usage_before = list(fs._usage)
        last_before = fs._last
        bgc_before = list(site._bgc)
        predicted = site._predict_next_client_start()
        assert list(fs._usage) == usage_before
        assert fs._last == last_before
        assert list(site._bgc) == bgc_before
        # and the prediction is exact: the client starts at that instant
        sim.run_until(500.0)
        assert job.start_time == predicted

    def test_prediction_matches_across_commit_paths(self):
        preds = []
        for block in (True, False):
            sim, site = make_site(3600.0, n_cores=1, block=block)
            site.feed_background([0.5, 1.0], [30.0, 25.0], [0, 1])
            sim.run_until(2.0)
            site.enqueue(Job(runtime=5.0, vo="cms"))
            preds.append(site._predict_next_client_start())
        assert preds[0] == preds[1]

    def test_scratch_fork_is_reused(self):
        sim, site, job = self.scenario()
        assert site._pred_scratch is None or isinstance(
            site._pred_scratch, type(site.fairshare)
        )
        p1 = site._predict_next_client_start()
        scratch = site._pred_scratch
        assert scratch is not None
        p2 = site._predict_next_client_start()
        assert site._pred_scratch is scratch  # reset in place, not reallocated
        assert p1 == p2

    def test_scratch_survives_population_of_predictions(self):
        sim, site = make_site(86_400.0, n_cores=2)
        site.feed_background(
            list(np.sort(np.random.default_rng(7).uniform(0, 50, 20))),
            [20.0] * 20,
            list(np.random.default_rng(8).integers(0, 3, 20)),
        )
        scratch = None
        for k in range(5):
            sim.run_until(10.0 * k + 5.0)
            site.enqueue(Job(runtime=5.0, vo="biomed"))
            site._predict_next_client_start()
            if scratch is None:
                scratch = site._pred_scratch
            else:
                assert site._pred_scratch is scratch


class TestPopulationParity:
    """The population driver sees identical results on both paths."""

    def test_small_population_block_vs_scalar(self):
        from repro.gridsim import warmed_snapshot
        from repro.population import FleetSpec, PopulationSpec, run_population

        sites = tuple(
            SiteConfig(
                f"p{i}",
                16,
                utilization=0.85,
                runtime_median=900.0,
                vo_shares=SHARES3,
            )
            for i in range(2)
        )
        cfg = GridConfig(sites=sites)
        snap = warmed_snapshot(cfg, seed=23, duration=3600.0)
        spec = PopulationSpec(
            fleets=(
                FleetSpec("biomed", SingleResubmission(t_inf=4000.0), 60),
                FleetSpec(
                    "atlas",
                    MultipleSubmission(b=3, t_inf=4000.0),
                    40,
                    runtime=120.0,
                ),
            ),
            window=20_000.0,
        )
        outs = []
        for flag in (True, False):
            grid = snap.restore()
            set_block_commits(grid, flag)
            outs.append(run_population(grid, spec, seed=23))
        a, b = outs
        for fa, fb in zip(a.fleets, b.fleets):
            np.testing.assert_array_equal(fa.j, fb.j)
            np.testing.assert_array_equal(fa.jobs_submitted, fb.jobs_submitted)
        assert a.site_usage_shares == b.site_usage_shares
        assert a.duration == b.duration
