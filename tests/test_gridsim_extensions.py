"""Tests for grid telemetry, outages, and their interplay."""

import numpy as np
import pytest

from repro.gridsim import FaultModel, GridConfig, GridSimulator, SiteConfig
from repro.gridsim.events import Simulator
from repro.gridsim.jobs import Job, JobState
from repro.gridsim.metrics import GridMonitor
from repro.gridsim.outages import OutageProcess
from repro.gridsim.site import ComputingElement


def tiny_config(**kw) -> GridConfig:
    defaults = dict(
        sites=(
            SiteConfig("a", 8, utilization=0.7, runtime_median=600.0),
            SiteConfig("b", 8, utilization=0.7, runtime_median=600.0),
        ),
        matchmaking_median=20.0,
        faults=FaultModel(),
    )
    defaults.update(kw)
    return GridConfig(**defaults)


class TestGridMonitor:
    def test_samples_at_cadence(self):
        grid = GridSimulator(tiny_config(), seed=1)
        mon = GridMonitor(grid, period=600.0)
        mon.start()
        grid.run_until(6000.0)
        # t=0 sample plus one per period
        assert len(mon) == 11
        np.testing.assert_allclose(np.diff(mon.times()), 600.0)

    def test_series_and_bundle(self):
        grid = GridSimulator(tiny_config(), seed=2)
        mon = GridMonitor(grid, period=300.0)
        mon.start()
        grid.run_until(3000.0)
        bundle = mon.bundle()
        assert bundle.get("queued jobs").x.size == len(mon)
        assert (bundle.get("utilization").y <= 1.0).all()

    def test_stop(self):
        grid = GridSimulator(tiny_config(), seed=3)
        mon = GridMonitor(grid, period=100.0)
        mon.start()
        grid.run_until(500.0)
        mon.stop()
        n = len(mon)
        grid.run_until(2000.0)
        assert len(mon) == n

    def test_double_start_rejected(self):
        grid = GridSimulator(tiny_config(), seed=4)
        mon = GridMonitor(grid, period=100.0)
        mon.start()
        with pytest.raises(RuntimeError, match="already"):
            mon.start()

    def test_max_samples_cap(self):
        grid = GridSimulator(tiny_config(), seed=5)
        mon = GridMonitor(grid, period=10.0, max_samples=5)
        mon.start()
        grid.run_until(1000.0)
        assert len(mon) == 5

    def test_aggregates(self):
        grid = GridSimulator(tiny_config(), seed=6)
        mon = GridMonitor(grid, period=500.0)
        mon.start()
        grid.run_until(5000.0)
        assert mon.peak_queue() >= 0
        assert 0.0 <= mon.mean_utilization() <= 1.0

    def test_aggregates_require_samples(self):
        grid = GridSimulator(tiny_config(), seed=7)
        mon = GridMonitor(grid, period=100.0)
        with pytest.raises(ValueError):
            mon.peak_queue()
        with pytest.raises(ValueError):
            mon.mean_utilization()

    def test_validation(self):
        grid = GridSimulator(tiny_config(), seed=8)
        with pytest.raises(ValueError):
            GridMonitor(grid, period=0.0)
        with pytest.raises(ValueError):
            GridMonitor(grid, period=10.0, max_samples=0)


class TestOutageProcess:
    def make_site(self):
        sim = Simulator()
        site = ComputingElement("ce", n_cores=4, sim=sim)
        return sim, site

    def test_outage_stalls_dispatch(self):
        sim, site = self.make_site()
        rng = np.random.default_rng(0)
        proc = OutageProcess(site, sim, rng, mean_uptime=100.0,
                             mean_downtime=1e9, kill_running=0.0)
        proc.start()
        sim.run_until(2000.0)  # well past the expected first outage
        assert proc.is_down
        job = Job(runtime=10.0)
        site.enqueue(job)
        sim.run_until(3000.0)
        assert job.state is JobState.QUEUED  # gate closed: never started

    def test_recovery_drains_queue(self):
        sim, site = self.make_site()
        rng = np.random.default_rng(1)
        proc = OutageProcess(site, sim, rng, mean_uptime=50.0,
                             mean_downtime=200.0, kill_running=0.0)
        proc.start()
        sim.run_until(5000.0)
        job = Job(runtime=1.0)
        site.enqueue(job)
        sim.run_until(50_000.0)
        assert job.state is JobState.COMPLETED
        assert proc.outages_started >= 1

    def test_kill_running_jobs(self):
        sim, site = self.make_site()
        jobs = [Job(runtime=1e8) for _ in range(4)]
        for j in jobs:
            site.enqueue(j)
        rng = np.random.default_rng(2)
        proc = OutageProcess(site, sim, rng, mean_uptime=10.0,
                             mean_downtime=1e9, kill_running=1.0)
        proc.start()
        sim.run_until(10_000.0)
        assert proc.is_down
        assert all(j.state is JobState.CANCELLED for j in jobs)
        assert site.busy_cores == 0  # cores idle but gated

    def test_kill_none(self):
        sim, site = self.make_site()
        jobs = [Job(runtime=1e8) for _ in range(2)]
        for j in jobs:
            site.enqueue(j)
        rng = np.random.default_rng(3)
        proc = OutageProcess(site, sim, rng, mean_uptime=10.0,
                             mean_downtime=1e9, kill_running=0.0)
        proc.start()
        sim.run_until(10_000.0)
        assert all(j.state is JobState.RUNNING for j in jobs)

    def test_validation(self):
        sim, site = self.make_site()
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            OutageProcess(site, sim, rng, mean_uptime=0.0)
        with pytest.raises(ValueError):
            OutageProcess(site, sim, rng, mean_downtime=-1.0)
        with pytest.raises(ValueError):
            OutageProcess(site, sim, rng, kill_running=1.5)

    def test_outages_create_latency_outliers(self):
        # probes submitted into a grid with outage-prone sites should see
        # extra long waits compared to an outage-free clone
        from repro.gridsim import ProbeExperiment

        def campaign(with_outages: bool) -> float:
            grid = GridSimulator(tiny_config(), seed=9)
            if with_outages:
                rng = np.random.default_rng(7)
                for site in grid.sites:
                    OutageProcess(
                        site, grid.sim, rng,
                        mean_uptime=20_000.0, mean_downtime=15_000.0,
                        kill_running=0.5,
                    ).start()
            grid.warm_up(3600.0)
            trace = ProbeExperiment(grid, n_slots=6, timeout=5000.0).run(
                100_000.0
            )
            return trace.bounded_mean_latency()

        assert campaign(True) > campaign(False)
