"""Tests for the DES kernel, jobs, sites, WMS and fault model."""

import numpy as np
import pytest

from repro.gridsim.events import Simulator
from repro.gridsim.faults import FaultModel
from repro.gridsim.jobs import Job, JobState
from repro.gridsim.site import ComputingElement
from repro.gridsim.wms import WorkloadManager


class TestSimulator:
    def test_time_advances_with_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, lambda: fired.append(sim.now))
        sim.schedule(5.0, lambda: fired.append(sim.now))
        sim.run_until(20.0)
        assert fired == [5.0, 10.0]
        assert sim.now == 20.0

    def test_fifo_among_simultaneous_events(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(1.0, lambda: order.append("b"))
        sim.run_until(2.0)
        assert order == ["a", "b"]

    def test_cancelled_events_skipped(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(1.0, lambda: fired.append("x"))
        ev.cancel()
        sim.run_until(2.0)
        assert fired == []
        assert sim.events_processed == 0

    def test_events_scheduled_during_run(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append(sim.now)
            if sim.now < 3.0:
                sim.schedule(1.0, chain)

        sim.schedule(1.0, chain)
        sim.run_until(10.0)
        assert fired == [1.0, 2.0, 3.0]

    def test_run_until_respects_boundary(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append("x"))
        sim.run_until(4.999)
        assert fired == []
        sim.run_until(5.0)
        assert fired == ["x"]

    def test_cannot_schedule_into_past(self):
        sim = Simulator()
        sim.run_until(10.0)
        with pytest.raises(ValueError, match="past"):
            sim.schedule(-1.0, lambda: None)
        with pytest.raises(ValueError, match="past"):
            sim.schedule_at(5.0, lambda: None)

    def test_cannot_run_backwards(self):
        sim = Simulator()
        sim.run_until(10.0)
        with pytest.raises(ValueError):
            sim.run_until(5.0)

    def test_run_until_idle_processes_everything(self):
        sim = Simulator()
        fired = []
        for d in (3.0, 1.0, 2.0):
            sim.schedule(d, lambda d=d: fired.append(d))
        sim.run_until_idle()
        assert fired == [1.0, 2.0, 3.0]

    def test_run_until_idle_guards_runaway(self):
        sim = Simulator()

        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(1.0, forever)
        with pytest.raises(RuntimeError, match="runaway"):
            sim.run_until_idle(max_events=100)


class TestScheduleMany:
    def test_bulk_schedule_fires_in_order(self):
        sim = Simulator()
        fired = []
        times = [3.0, 1.0, 2.0]
        sim.schedule_many(times, [lambda t=t: fired.append(t) for t in times])
        sim.run_until(5.0)
        assert fired == [1.0, 2.0, 3.0]

    def test_fifo_among_equal_times_follows_iteration_order(self):
        sim = Simulator()
        fired = []
        sim.schedule_many(
            [1.0, 1.0, 1.0],
            [lambda: fired.append("a"), lambda: fired.append("b"),
             lambda: fired.append("c")],
        )
        sim.run_until(2.0)
        assert fired == ["a", "b", "c"]

    def test_interleaves_with_scalar_schedule(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.5, lambda: fired.append("scalar"))
        sim.schedule_many([1.0, 2.0], [lambda: fired.append("x"),
                                       lambda: fired.append("y")])
        sim.run_until(3.0)
        assert fired == ["x", "scalar", "y"]

    def test_returned_events_are_cancellable(self):
        sim = Simulator()
        fired = []
        events = sim.schedule_many(
            [1.0, 2.0], [lambda: fired.append(1), lambda: fired.append(2)]
        )
        events[0].cancel()
        sim.run_until(3.0)
        assert fired == [2]

    def test_rejects_past_times(self):
        sim = Simulator()
        sim.run_until(10.0)
        with pytest.raises(ValueError, match="past"):
            sim.schedule_many([5.0], [lambda: None])


class TestCompaction:
    def test_husks_compacted_past_threshold(self):
        from repro.gridsim import events as events_mod

        sim = Simulator()
        keep = sim.schedule(10_000.0, lambda: None)
        husks = [
            sim.schedule(float(i + 1), lambda: None)
            for i in range(events_mod._COMPACT_MIN + 10)
        ]
        for ev in husks:
            ev.cancel()
        assert sim.compactions >= 1
        # compaction fired mid-loop: husks cancelled before it are gone,
        # only the few cancelled after it remain alongside the live event
        assert sim.pending == 1 + sim.cancelled_pending
        assert sim.pending < len(husks) // 2
        assert not keep.cancelled

    def test_behaviour_preserved_across_compaction(self):
        from repro.gridsim import events as events_mod

        sim = Simulator()
        fired = []
        for i in range(50):
            sim.schedule(1000.0 + i, lambda i=i: fired.append(i))
        husks = [
            sim.schedule(float(i + 1), lambda: None)
            for i in range(events_mod._COMPACT_MIN + 10)
        ]
        for ev in husks:
            ev.cancel()
        sim.run_until(2000.0)
        assert fired == list(range(50))

    def test_small_heaps_not_compacted(self):
        sim = Simulator()
        evs = [sim.schedule(float(i + 1), lambda: None) for i in range(100)]
        for ev in evs:
            ev.cancel()
        assert sim.compactions == 0
        assert sim.pending == 100  # husks stay until popped

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        ev.cancel()
        ev.cancel()
        assert sim.cancelled_pending == 1

    def test_cancel_after_fire_does_not_count_a_husk(self):
        # strategy cleanup cancels every timer it ever armed, including
        # ones that already fired; those must not skew the husk counter
        sim = Simulator()
        evs = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
        sim.run_until(20.0)
        for ev in evs:
            ev.cancel()
        assert sim.cancelled_pending == 0
        assert sim.pending == 0


class TestJob:
    def test_latency_inf_until_started(self):
        job = Job()
        assert job.latency == float("inf")

    def test_latency_after_start(self):
        job = Job()
        job.submit_time = 10.0
        job.start_time = 250.0
        job.state = JobState.RUNNING
        assert job.latency == 240.0

    def test_outlier_states(self):
        for state in (JobState.LOST, JobState.STUCK, JobState.CANCELLED):
            job = Job()
            job.state = state
            assert job.is_outlier
        job = Job()
        job.state = JobState.COMPLETED
        assert not job.is_outlier

    def test_ids_unique(self):
        assert Job().job_id != Job().job_id


class TestComputingElement:
    def test_jobs_run_when_cores_free(self):
        sim = Simulator()
        ce = ComputingElement("ce", n_cores=2, sim=sim)
        jobs = [Job(runtime=10.0) for _ in range(3)]
        for j in jobs:
            ce.enqueue(j)
        assert jobs[0].state is JobState.RUNNING
        assert jobs[1].state is JobState.RUNNING
        assert jobs[2].state is JobState.QUEUED
        assert ce.queue_length == 1
        assert ce.busy_cores == 2

    def test_fifo_order(self):
        sim = Simulator()
        ce = ComputingElement("ce", n_cores=1, sim=sim)
        a, b, c = Job(runtime=5.0), Job(runtime=5.0), Job(runtime=5.0)
        for j in (a, b, c):
            ce.enqueue(j)
        sim.run_until(6.0)
        assert a.state is JobState.COMPLETED
        assert b.state is JobState.RUNNING
        assert c.state is JobState.QUEUED

    def test_completion_frees_core(self):
        sim = Simulator()
        ce = ComputingElement("ce", n_cores=1, sim=sim)
        a, b = Job(runtime=10.0), Job(runtime=10.0)
        ce.enqueue(a)
        ce.enqueue(b)
        sim.run_until(25.0)
        assert a.state is JobState.COMPLETED
        assert b.state is JobState.COMPLETED
        assert b.start_time == 10.0
        assert ce.free_cores == 1
        assert ce.jobs_completed == 2

    def test_cancel_queued(self):
        sim = Simulator()
        ce = ComputingElement("ce", n_cores=1, sim=sim)
        a, b = Job(runtime=10.0), Job(runtime=10.0)
        ce.enqueue(a)
        ce.enqueue(b)
        assert ce.cancel(b)
        assert b.state is JobState.CANCELLED
        assert ce.queue_length == 0

    def test_cancel_foreign_queued_job_refused(self):
        sim = Simulator()
        here = ComputingElement("here", n_cores=1, sim=sim)
        there = ComputingElement("there", n_cores=1, sim=sim)
        blocker, queued = Job(runtime=1e6), Job(runtime=10.0)
        there.enqueue(blocker)
        there.enqueue(queued)
        assert not here.cancel(queued)  # queued, but at the other site
        assert queued.state is JobState.QUEUED
        assert here.queue_length == 0
        assert there.queue_length == 1

    def test_cancel_running_releases_core_and_starts_next(self):
        sim = Simulator()
        ce = ComputingElement("ce", n_cores=1, sim=sim)
        a, b = Job(runtime=1000.0), Job(runtime=10.0)
        ce.enqueue(a)
        ce.enqueue(b)
        assert ce.cancel(a)
        assert a.state is JobState.CANCELLED
        assert b.state is JobState.RUNNING
        sim.run_until(2000.0)
        assert b.state is JobState.COMPLETED
        # a's completion event must not fire
        assert a.state is JobState.CANCELLED

    def test_cancel_completed_noop(self):
        sim = Simulator()
        ce = ComputingElement("ce", n_cores=1, sim=sim)
        a = Job(runtime=1.0)
        ce.enqueue(a)
        sim.run_until(2.0)
        assert not ce.cancel(a)
        assert a.state is JobState.COMPLETED

    def test_on_start_callback(self):
        sim = Simulator()
        started = []
        ce = ComputingElement("ce", n_cores=1, sim=sim, on_start=started.append)
        job = Job(runtime=1.0)
        ce.enqueue(job)
        assert started == [job]

    def test_estimated_wait(self):
        sim = Simulator()
        ce = ComputingElement("ce", n_cores=4, sim=sim)
        for _ in range(8):
            ce.enqueue(Job(runtime=100.0))
        # 4 running, 4 queued: wait ≈ 4 * guess / 4
        assert ce.estimated_wait(100.0) == pytest.approx(100.0)

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            ComputingElement("ce", n_cores=0, sim=sim)
        ce = ComputingElement("ce", n_cores=1, sim=sim)
        job = Job()
        job.state = JobState.RUNNING
        with pytest.raises(ValueError, match="state"):
            ce.enqueue(job)


class TestWorkloadManager:
    def make(self, n_sites=3, **kw):
        sim = Simulator()
        sites = [ComputingElement(f"ce{i}", 4, sim) for i in range(n_sites)]
        wms = WorkloadManager(sim, sites, np.random.default_rng(0), **kw)
        return sim, sites, wms

    def test_submit_dispatches_after_delay(self):
        sim, sites, wms = self.make()
        job = Job(runtime=1.0)
        wms.submit(job)
        assert job.state is JobState.MATCHING
        sim.run_until(10_000.0)
        assert job.state is JobState.COMPLETED
        assert job.site.startswith("ce")
        assert wms.dispatch_count == 1

    def test_matchmaking_delay_positive(self):
        sim, sites, wms = self.make()
        job = Job(runtime=1.0)
        wms.submit(job)
        sim.run_until_idle()
        assert job.start_time > 0.0

    def test_prefers_empty_site_once_info_refreshes(self):
        sim, sites, wms = self.make(ranking_noise=0.0, info_refresh=300.0)
        # clog site 0 and 1
        for _ in range(50):
            sites[0].enqueue(Job(runtime=1e6))
            sites[1].enqueue(Job(runtime=1e6))
        sim.run_until(301.0)  # let the information system refresh
        assert wms.select_site() is sites[2]

    def test_stale_snapshot(self):
        sim, sites, wms = self.make(ranking_noise=0.0, info_refresh=300.0)
        wms.current_snapshot()
        for _ in range(50):
            sites[2].enqueue(Job(runtime=1e6))
        # snapshot not refreshed yet: site 2 still looks empty
        assert wms.select_site() is sites[0] or np.all(wms.current_snapshot() == 0)
        sim.run_until(301.0)
        snap = wms.current_snapshot()
        assert snap[2] > 0.0

    def test_cancel_matching(self):
        sim, sites, wms = self.make()
        job = Job(runtime=1.0)
        wms.submit(job)
        assert wms.cancel_matching(job)
        sim.run_until_idle()
        assert job.state is JobState.CANCELLED

    def test_submit_state_validation(self):
        _sim, _sites, wms = self.make()
        job = Job()
        job.state = JobState.QUEUED
        with pytest.raises(ValueError, match="state"):
            wms.submit(job)

    def test_needs_sites(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="at least one"):
            WorkloadManager(sim, [], np.random.default_rng(0))


class TestFaultModel:
    def test_rho_composition(self):
        f = FaultModel(p_lost=0.1, p_stuck=0.2)
        assert f.rho == pytest.approx(0.1 + 0.9 * 0.2)

    def test_zero_faults(self):
        f = FaultModel()
        assert f.rho == 0.0
        rng = np.random.default_rng(0)
        assert not any(f.draw_lost(rng) for _ in range(100))

    def test_draw_rates(self):
        f = FaultModel(p_lost=0.3, p_stuck=0.0)
        rng = np.random.default_rng(1)
        hits = sum(f.draw_lost(rng) for _ in range(20_000))
        assert hits / 20_000 == pytest.approx(0.3, abs=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultModel(p_lost=1.5)
        with pytest.raises(ValueError, match="< 1"):
            FaultModel(p_lost=0.6, p_stuck=0.5)


class TestPooledTimerWheel:
    def test_fires_at_rounded_up_boundary(self):
        sim = Simulator()
        fired = []
        sim.schedule_pooled(95.0, lambda: fired.append(sim.now))
        sim.run_until(200.0)
        g = sim.pooled_granularity
        assert fired == [np.ceil(95.0 / g) * g]

    def test_never_fires_early(self):
        sim = Simulator()
        fired = []
        sim.schedule_pooled(61.0, lambda: fired.append(sim.now))
        sim.run_until(61.0)
        assert fired == []
        sim.run_until(200.0)
        assert len(fired) == 1 and fired[0] >= 61.0

    def test_same_bucket_shares_one_heap_event(self):
        sim = Simulator()
        fired = []
        before = sim.pending
        for k in range(10):
            sim.schedule_pooled(50.0 + 0.1 * k, lambda k=k: fired.append(k))
        assert sim.pending == before + 1  # one shared bucket event
        sim.run_until(200.0)
        assert fired == list(range(10))

    def test_cancel_is_heap_free_flag_flip(self):
        sim = Simulator()
        fired = []
        timers = [sim.schedule_pooled(50.0, lambda: fired.append("x")) for _ in range(5)]
        timers[1].cancel()
        timers[3].cancel()
        sim.run_until(200.0)
        assert fired == ["x", "x", "x"]

    def test_fully_cancelled_bucket_cancels_its_event(self):
        sim = Simulator()
        timers = [sim.schedule_pooled(50.0, lambda: None) for _ in range(3)]
        for t in timers:
            t.cancel()
        assert sim.cancelled_pending >= 1  # the bucket's shared event died
        sim.run_until(200.0)
        assert sim.events_processed == 0

    def test_rearming_after_mass_cancellation(self):
        sim = Simulator()
        fired = []
        dead = sim.schedule_pooled(50.0, lambda: fired.append("dead"))
        dead.cancel()
        sim.schedule_pooled(50.0, lambda: fired.append("live"))
        sim.run_until(200.0)
        assert fired == ["live"]

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        fired = []
        timer = sim.schedule_pooled(10.0, lambda: fired.append("x"))
        sim.run_until(100.0)
        timer.cancel()  # must not raise or corrupt accounting
        assert fired == ["x"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule_pooled(-1.0, lambda: None)

    def test_reentrant_arming_from_bucket_callback(self):
        sim = Simulator()
        fired = []

        def rearm():
            fired.append(sim.now)
            if len(fired) < 3:
                sim.schedule_pooled(1.0, rearm)

        sim.schedule_pooled(1.0, rearm)
        sim.run_until(1_000.0)
        assert len(fired) == 3
        assert fired == sorted(fired)


class TestSimulatorStop:
    def test_stop_ends_run_at_current_instant(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: (seen.append(5.0), sim.stop()))
        sim.schedule(10.0, lambda: seen.append(10.0))
        sim.run_until(100.0)
        assert seen == [5.0]
        assert sim.now == 5.0

    def test_run_resumes_after_stop(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: sim.stop())
        sim.schedule(10.0, lambda: seen.append(10.0))
        sim.run_until(100.0)
        sim.run_until(100.0)
        assert seen == [10.0]
        assert sim.now == 100.0

    def test_stop_outside_run_does_not_leak(self):
        sim = Simulator()
        seen = []
        sim.stop()  # no run active: must not cancel the next run
        sim.schedule(5.0, lambda: seen.append(5.0))
        sim.run_until(10.0)
        assert seen == [5.0]
        assert sim.now == 10.0

    def test_stop_in_run_until_idle(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: (seen.append(1.0), sim.stop()))
        sim.schedule(2.0, lambda: seen.append(2.0))
        sim.run_until_idle()
        assert seen == [1.0]
        assert sim.now == 1.0
