"""Property-based tests (hypothesis) for the core mathematical invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.model import LatencyModel
from repro.core.paper_equations import eq1_expectation, eq2_std
from repro.core.strategies import (
    delayed_moments,
    delayed_survival,
    multiple_moments,
    n_parallel_for_latency,
    single_moments,
)
from repro.distributions import (
    EmpiricalDistribution,
    Exponential,
    LogNormal,
    ShiftedDistribution,
    TruncatedDistribution,
    Weibull,
)
from repro.util.grids import TimeGrid

# -- strategies for strategies: model and parameter generators ------------

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

model_params = st.tuples(
    st.floats(min_value=4.5, max_value=6.5),   # lognormal mu
    st.floats(min_value=0.4, max_value=1.6),   # lognormal sigma
    st.floats(min_value=0.0, max_value=0.4),   # rho
    st.floats(min_value=0.0, max_value=300.0), # shift
)


def make_gridded(params, t_max=6000.0, dt=4.0):
    mu, sigma, rho, shift = params
    dist = ShiftedDistribution(LogNormal(mu=mu, sigma=sigma), shift=shift)
    return LatencyModel(dist, rho=rho).on_grid(TimeGrid(t_max=t_max, dt=dt))


class TestSubDistributionInvariants:
    @SETTINGS
    @given(params=model_params)
    def test_f_tilde_monotone_bounded(self, params):
        gm = make_gridded(params)
        assert (np.diff(gm.F) >= -1e-12).all()
        assert gm.F[0] <= 1e-9
        assert gm.F[-1] <= 1.0 - gm.rho + 1e-9

    @SETTINGS
    @given(params=model_params)
    def test_survival_complements(self, params):
        gm = make_gridded(params)
        np.testing.assert_allclose(gm.F + gm.S, 1.0, atol=1e-12)

    @SETTINGS
    @given(params=model_params)
    def test_moment_integrals_nonnegative_monotone(self, params):
        gm = make_gridded(params)
        for arr in (gm.A, gm.M1, gm.M2):
            assert (np.diff(arr) >= -1e-6).all()
            assert arr[0] == pytest.approx(0.0, abs=1e-9)


class TestSingleInvariants:
    @SETTINGS
    @given(
        params=model_params,
        t_inf=st.floats(min_value=400.0, max_value=5000.0),
    )
    def test_eq1_eq2_identities(self, params, t_inf):
        # printed Eqs. (1)-(2) == geometric-sum implementation everywhere
        gm = make_gridded(params)
        t_inf = gm.grid.time_of(gm.index_of(t_inf))
        mom = single_moments(gm, t_inf)
        if not np.isfinite(mom.expectation):
            return
        assert eq1_expectation(gm, t_inf) == pytest.approx(
            mom.expectation, rel=1e-9
        )
        assert eq2_std(gm, t_inf) == pytest.approx(mom.std, rel=1e-6, abs=1e-6)

    @SETTINGS
    @given(
        params=model_params,
        t_inf=st.floats(min_value=400.0, max_value=5000.0),
    )
    def test_expectation_exceeds_truncated_mean(self, params, t_inf):
        # E_J >= E[R | R < t_inf]: resubmission cannot beat a free oracle
        gm = make_gridded(params)
        t_inf = gm.grid.time_of(gm.index_of(t_inf))
        k = gm.index_of(t_inf)
        p = float(gm.F[k])
        if p < 1e-6:
            return
        cond_mean = float(gm.M1[k]) / p
        assert single_moments(gm, t_inf).expectation >= cond_mean - 1e-6


class TestMultipleInvariants:
    @SETTINGS
    @given(
        params=model_params,
        t_inf=st.floats(min_value=500.0, max_value=4000.0),
        b=st.integers(min_value=1, max_value=12),
    )
    def test_monotone_in_b(self, params, t_inf, b):
        gm = make_gridded(params)
        t_inf = gm.grid.time_of(gm.index_of(t_inf))
        e_b = multiple_moments(gm, b, t_inf).expectation
        e_b1 = multiple_moments(gm, b + 1, t_inf).expectation
        if np.isfinite(e_b):
            assert e_b1 <= e_b + 1e-9

    @SETTINGS
    @given(
        params=model_params,
        t_inf=st.floats(min_value=500.0, max_value=4000.0),
    )
    def test_b1_is_single(self, params, t_inf):
        gm = make_gridded(params)
        t_inf = gm.grid.time_of(gm.index_of(t_inf))
        ms = single_moments(gm, t_inf)
        mm = multiple_moments(gm, 1, t_inf)
        if np.isfinite(ms.expectation):
            assert mm.expectation == pytest.approx(ms.expectation, rel=1e-9)
            assert mm.std == pytest.approx(ms.std, rel=1e-6, abs=1e-6)


class TestDelayedInvariants:
    delayed_params = st.tuples(
        st.floats(min_value=200.0, max_value=1200.0),  # t0
        st.floats(min_value=1.0, max_value=2.0),       # ratio
    )

    @SETTINGS
    @given(params=model_params, dp=delayed_params)
    def test_survival_integrates_to_expectation(self, params, dp):
        gm = make_gridded(params)
        t0_raw, ratio = dp
        k0 = gm.index_of(t0_raw)
        ki = min(int(round(k0 * ratio)), 2 * k0, gm.grid.n - 1)
        t0 = gm.grid.time_of(k0)
        t_inf = gm.grid.time_of(ki)
        mom = delayed_moments(gm, t0, t_inf)
        s = delayed_survival(gm, t0, t_inf)
        if s[-1] > 1e-9:
            return  # tail escapes the grid; identity not checkable
        assert mom.expectation == pytest.approx(
            gm.grid.integrate(s), rel=1e-6
        )

    @SETTINGS
    @given(params=model_params, dp=delayed_params)
    def test_beats_or_matches_single_at_t0(self, params, dp):
        # delayed with (t0, t_inf) dominates single resubmission at t0:
        # the extra copies can only help (pathwise dominance)
        gm = make_gridded(params)
        t0_raw, ratio = dp
        k0 = gm.index_of(t0_raw)
        ki = min(int(round(k0 * ratio)), 2 * k0, gm.grid.n - 1)
        t0 = gm.grid.time_of(k0)
        t_inf = gm.grid.time_of(ki)
        e_single = single_moments(gm, t0).expectation
        e_delayed = delayed_moments(gm, t0, t_inf).expectation
        if np.isfinite(e_single):
            assert e_delayed <= e_single + 1e-6

    @SETTINGS
    @given(params=model_params, t0=st.floats(min_value=200.0, max_value=1000.0))
    def test_monotone_in_t_inf(self, params, t0):
        # raising t_inf at fixed t0 only gives copies more time: E_J
        # is non-increasing (the exact form; the printed Eq. 5 violates
        # this — see the abl-eq5 experiment)
        gm = make_gridded(params)
        k0 = gm.index_of(t0)
        t0g = gm.grid.time_of(k0)
        kis = [k0, int(1.5 * k0), min(2 * k0, gm.grid.n - 1)]
        values = [
            delayed_moments(gm, t0g, gm.grid.time_of(k)).expectation
            for k in kis
        ]
        finite = [v for v in values if np.isfinite(v)]
        assert all(a >= b - 1e-6 for a, b in zip(finite, finite[1:]))

    @SETTINGS
    @given(
        l=st.floats(min_value=0.0, max_value=50_000.0),
        t0=st.floats(min_value=10.0, max_value=2000.0),
        ratio=st.floats(min_value=1.0, max_value=2.0),
    )
    def test_n_parallel_bounds(self, l, t0, ratio):
        # paper §6.1: N_// in [1, 2 - 1/(n+1)] and -> t_inf/t0
        t_inf = t0 * ratio
        val = float(n_parallel_for_latency(l, t0, t_inf))
        n = int(l // t0)
        assert 1.0 - 1e-9 <= val <= 2.0 - 1.0 / (n + 1) + 1e-9
        assert val <= t_inf / t0 + 1.0 / max(l / t0, 1.0)


class TestDistributionRoundtrips:
    @SETTINGS
    @given(
        mu=st.floats(min_value=3.0, max_value=7.0),
        sigma=st.floats(min_value=0.2, max_value=2.0),
        q=st.floats(min_value=0.01, max_value=0.99),
    )
    def test_lognormal_ppf_cdf_roundtrip(self, mu, sigma, q):
        d = LogNormal(mu=mu, sigma=sigma)
        assert float(d.cdf(d.ppf(q))) == pytest.approx(q, abs=1e-9)

    @SETTINGS
    @given(
        rate=st.floats(min_value=1e-4, max_value=1.0),
        upper=st.floats(min_value=10.0, max_value=10_000.0),
    )
    def test_truncated_mean_below_upper(self, rate, upper):
        d = TruncatedDistribution(Exponential(rate=rate), upper=upper)
        assert 0.0 < d.mean() < upper

    @SETTINGS
    @given(
        shape=st.floats(min_value=0.4, max_value=3.0),
        scale=st.floats(min_value=10.0, max_value=2000.0),
    )
    def test_weibull_median_formula(self, shape, scale):
        d = Weibull(shape=shape, scale=scale)
        expected = scale * np.log(2.0) ** (1.0 / shape)
        assert d.median() == pytest.approx(expected, rel=1e-9)

    @SETTINGS
    @given(
        samples=st.lists(
            st.floats(min_value=0.0, max_value=1e4),
            min_size=2,
            max_size=60,
        )
    )
    def test_empirical_cdf_hits_all_quantile_knots(self, samples):
        d = EmpiricalDistribution(np.array(samples), smooth=False)
        xs = np.sort(np.array(samples))
        c = np.asarray(d.cdf(xs))
        assert c[-1] == pytest.approx(1.0)
        assert (np.diff(c) >= -1e-12).all()


class TestMcAgreementProperty:
    @settings(max_examples=8, deadline=None)
    @given(
        params=model_params,
        t_inf=st.floats(min_value=600.0, max_value=3000.0),
    )
    def test_single_mc_tracks_analytic(self, params, t_inf):
        from repro.montecarlo import agreement_zscore, simulate_single

        gm = make_gridded(params)
        t_inf = gm.grid.time_of(gm.index_of(t_inf))
        mom = single_moments(gm, t_inf)
        if not np.isfinite(mom.expectation) or gm.F_at(t_inf) < 0.05:
            return
        run = simulate_single(gm.model, t_inf, 4000, rng=17)
        # grid discretisation adds a small bias on top of MC noise
        assert (
            agreement_zscore(mom.expectation, run.j) < 6.0
            or abs(mom.expectation - run.mean_j) / run.mean_j < 0.05
        )
