"""The user-population driver: specs, launch synthesis, shared-grid runs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.strategies import (
    DelayedResubmission,
    MultipleSubmission,
    SingleResubmission,
)
from repro.gridsim import (
    BrokerConfig,
    FaultModel,
    GridConfig,
    SiteConfig,
    warmed_snapshot,
)
from repro.population import (
    FleetSpec,
    PopulationSpec,
    adoption_population,
    run_population,
)
from repro.traces.generator import DiurnalProfile

SHARES = (("alpha", 0.6), ("beta", 0.4))


def small_grid_config(**kw) -> GridConfig:
    defaults = dict(
        sites=(
            SiteConfig(
                "a", 16, utilization=0.7, runtime_median=1200.0, vo_shares=SHARES
            ),
            SiteConfig(
                "b", 24, utilization=0.7, runtime_median=1800.0, vo_shares=SHARES
            ),
        ),
        matchmaking_median=30.0,
        faults=FaultModel(p_lost=0.01, p_stuck=0.01),
        brokers=(BrokerConfig("w1", ("a",)), BrokerConfig("w2", ("b",))),
    )
    defaults.update(kw)
    return GridConfig(**defaults)


def small_population(n=60) -> PopulationSpec:
    return PopulationSpec(
        fleets=(
            FleetSpec("alpha", SingleResubmission(t_inf=4000.0), n, broker="w1"),
            FleetSpec(
                "beta", MultipleSubmission(b=2, t_inf=4000.0), n // 2, broker="w2"
            ),
            FleetSpec(
                "alpha",
                DelayedResubmission(t0=1500.0, t_inf=3000.0),
                n // 3,
                runtime=300.0,
            ),
        ),
        window=6 * 3600.0,
    )


class TestSpecs:
    def test_fleet_validation_and_label(self):
        f = FleetSpec("vo1", SingleResubmission(t_inf=100.0), 5)
        assert f.label == "vo1/SingleResubmission"
        with pytest.raises(ValueError, match="vo must be non-empty"):
            FleetSpec("", SingleResubmission(t_inf=100.0), 5)
        with pytest.raises(ValueError, match="n_tasks"):
            FleetSpec("v", SingleResubmission(t_inf=100.0), -1)
        # zero tasks is legal: adoption sweeps can carve a VO down to
        # an empty fleet, which simply contributes nothing
        assert FleetSpec("v", SingleResubmission(t_inf=100.0), 0).n_tasks == 0
        with pytest.raises(ValueError, match="runtime"):
            FleetSpec("v", SingleResubmission(t_inf=100.0), 1, runtime=-1.0)

    def test_population_validation(self):
        # an empty fleet tuple is legal (run_population returns an
        # empty result); the window still has to be positive
        assert PopulationSpec(fleets=()).total_tasks == 0
        with pytest.raises(ValueError, match="window"):
            PopulationSpec(fleets=(), window=0.0)
        spec = small_population()
        assert spec.total_tasks == 60 + 30 + 20

    def test_launch_times_uniform(self):
        spec = small_population()
        rng = np.random.default_rng(0)
        t = spec.launch_times(spec.fleets[0], rng)
        assert t.size == 60
        assert (np.diff(t) >= 0.0).all()
        assert t.min() >= 0.0 and t.max() <= spec.window

    def test_launch_times_diurnal_shifts_mass(self):
        """With a sine profile peaking in the first half-period, more
        launches land there than under the uniform spec."""
        fleet = FleetSpec("v", SingleResubmission(t_inf=100.0), 4000)
        flat = PopulationSpec(fleets=(fleet,), window=86_400.0)
        peaked = PopulationSpec(
            fleets=(fleet,),
            window=86_400.0,
            diurnal=DiurnalProfile(amplitude=0.8),
        )
        u = flat.launch_times(fleet, np.random.default_rng(1))
        d = peaked.launch_times(fleet, np.random.default_rng(1))
        half = 43_200.0
        assert (d <= half).sum() > (u <= half).sum() + 400
        assert d.min() >= 0.0 and d.max() <= 86_400.0

    def test_adoption_population_conserves_tasks(self):
        for adoption in (0.0, 0.3, 1.0):
            spec = adoption_population(
                vo_tasks={"alpha": 100, "beta": 50},
                strategies={
                    "alpha": SingleResubmission(t_inf=100.0),
                    "beta": SingleResubmission(t_inf=100.0),
                },
                adopter_vo="alpha",
                adopted=MultipleSubmission(b=3, t_inf=100.0),
                adoption=adoption,
            )
            assert spec.total_tasks == 150
            alpha_tasks = sum(
                f.n_tasks for f in spec.fleets if f.vo == "alpha"
            )
            assert alpha_tasks == 100
        # full adoption leaves no baseline alpha fleet
        spec = adoption_population(
            vo_tasks={"alpha": 100},
            strategies={"alpha": SingleResubmission(t_inf=100.0)},
            adopter_vo="alpha",
            adopted=MultipleSubmission(b=3, t_inf=100.0),
            adoption=1.0,
        )
        assert len(spec.fleets) == 1
        assert spec.fleets[0].label == "alpha/adopters"

    def test_adoption_population_validation(self):
        with pytest.raises(ValueError, match="adoption must be"):
            adoption_population(
                vo_tasks={"a": 1},
                strategies={"a": SingleResubmission(t_inf=1.0)},
                adopter_vo="a",
                adopted=SingleResubmission(t_inf=1.0),
                adoption=1.5,
            )
        with pytest.raises(ValueError, match="not in vo_tasks"):
            adoption_population(
                vo_tasks={"a": 1},
                strategies={"a": SingleResubmission(t_inf=1.0)},
                adopter_vo="zz",
                adopted=SingleResubmission(t_inf=1.0),
                adoption=0.5,
            )


class TestDriver:
    def run_small(self, seed=11):
        snap = warmed_snapshot(small_grid_config(), seed=3, duration=3600.0)
        grid = snap.restore()
        return run_population(grid, small_population(), seed=seed)

    def test_outcomes_accounted_per_fleet(self):
        result = self.run_small()
        spec = small_population()
        assert len(result.fleets) == len(spec.fleets)
        for outcome, fleet in zip(result.fleets, spec.fleets):
            assert outcome.spec == fleet
            assert outcome.j.size + outcome.gave_up == fleet.n_tasks
            assert outcome.jobs_submitted.size == outcome.j.size
        assert result.total_finished + result.total_gave_up == spec.total_tasks
        # burst fleet uses ~b jobs per task, single ~1
        assert result.fleets[1].mean_jobs > result.fleets[0].mean_jobs

    def test_deterministic_given_seeds(self):
        a, b = self.run_small(seed=11), self.run_small(seed=11)
        for fa, fb in zip(a.fleets, b.fleets):
            np.testing.assert_array_equal(fa.j, fb.j)
            np.testing.assert_array_equal(fa.jobs_submitted, fb.jobs_submitted)
        assert a.broker_dispatches == b.broker_dispatches
        c = self.run_small(seed=12)
        assert any(
            fa.j.size != fc.j.size or not np.array_equal(fa.j, fc.j)
            for fa, fc in zip(a.fleets, c.fleets)
        )

    def test_by_vo_pools_fleets(self):
        result = self.run_small()
        pooled = result.by_vo()
        assert set(pooled) == {"alpha", "beta"}
        alpha_sizes = sum(
            f.j.size for f in result.fleets if f.spec.vo == "alpha"
        )
        assert pooled["alpha"].size == alpha_sizes

    def test_brokers_and_usage_telemetry(self):
        result = self.run_small()
        assert len(result.broker_dispatches) == 2
        assert sum(result.broker_dispatches) > 0
        assert set(result.site_usage_shares) == {"a", "b"}
        for shares in result.site_usage_shares.values():
            assert set(shares) == {"alpha", "beta"}
            assert sum(shares.values()) == pytest.approx(1.0)

    def test_home_broker_routing_is_honoured(self):
        snap = warmed_snapshot(small_grid_config(), seed=3, duration=3600.0)
        grid = snap.restore()
        spec = PopulationSpec(
            fleets=(
                FleetSpec(
                    "alpha", SingleResubmission(t_inf=4000.0), 40, broker="w2"
                ),
            ),
            window=3600.0,
        )
        before = [b.dispatch_count for b in grid.brokers]
        run_population(grid, spec, seed=1)
        after = [b.dispatch_count for b in grid.brokers]
        assert after[0] == before[0]  # w1 untouched
        assert after[1] > before[1]

    def test_telemetry_counts_are_per_run_deltas(self):
        """A second run on the same grid reports only its own faults
        and dispatches, not the grid's lifetime counters."""
        snap = warmed_snapshot(small_grid_config(), seed=3, duration=3600.0)
        grid = snap.restore()
        spec = small_population(30)
        first = run_population(grid, spec, seed=11)
        second = run_population(grid, spec, seed=11)
        # the two runs are the grid's only client activity, so the
        # deltas partition the lifetime counters exactly
        assert first.jobs_lost + second.jobs_lost == grid.jobs_lost
        assert first.jobs_stuck + second.jobs_stuck == grid.jobs_stuck
        for f, s, b in zip(
            first.broker_dispatches, second.broker_dispatches, grid.brokers
        ):
            assert f + s == b.dispatch_count

    def test_validation(self):
        snap = warmed_snapshot(small_grid_config(), seed=3, duration=3600.0)
        grid = snap.restore()
        with pytest.raises(ValueError, match="horizon_slack"):
            run_population(
                grid, small_population(), seed=1, horizon_slack=-1.0
            )
