"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main
from repro.experiments import list_experiments


def run_cli(*argv) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestList:
    def test_lists_all_experiments(self):
        code, text = run_cli("list")
        assert code == 0
        for exp_id in list_experiments():
            assert exp_id in text


class TestRun:
    def test_run_single_experiment(self):
        code, text = run_cli("run", "fig1", "--dt", "4.0")
        assert code == 0
        assert "Figure 1" in text
        assert "rho" in text

    def test_run_writes_files(self, tmp_path):
        code, text = run_cli(
            "run", "table1", "--dt", "4.0", "--out", str(tmp_path)
        )
        assert code == 0
        written = tmp_path / "table1.txt"
        assert written.exists()
        assert "Table 1" in written.read_text()
        assert str(written) in text

    def test_unknown_experiment_fails(self):
        code, text = run_cli("run", "fig99")
        assert code == 2
        assert "unknown experiment" in text
        assert "fig1" in text  # lists the available ids

    def test_seed_changes_output(self):
        _, a = run_cli("run", "fig1", "--dt", "4.0", "--seed", "1")
        _, b = run_cli("run", "fig1", "--dt", "4.0", "--seed", "2")
        assert a != b


class TestDescribe:
    def test_describe_week(self):
        code, text = run_cli("describe", "2006-IX")
        assert code == 0
        assert "570" in text  # the paper's mean
        assert "synthesized" in text

    def test_describe_aggregate(self):
        code, text = run_cli("describe", "2007/08")
        assert code == 0
        assert "union" in text

    def test_describe_unknown(self):
        code, text = run_cli("describe", "2020-01")
        assert code == 2
        assert "unknown trace set" in text


class TestFederation:
    def test_runs_small_population(self):
        code, text = run_cli(
            "federation",
            "--sites", "4",
            "--brokers", "2",
            "--tasks", "120",
            "--window", "7200",
        )
        assert code == 0
        assert "biomed/adopters" in text
        assert "broker dispatches" in text
        assert "end-state fair-share usage" in text

    def test_single_vo_single_broker(self):
        code, text = run_cli(
            "federation",
            "--sites", "3",
            "--brokers", "1",
            "--vos", "solo:1.0",
            "--tasks", "60",
            "--adoption", "0",
            "--window", "3600",
        )
        assert code == 0
        assert "solo/SingleResubmission" in text
        # 1 VO -> plain FIFO sites, no fair-share table
        assert "end-state fair-share usage" not in text

    def test_bad_arguments(self):
        code, text = run_cli("federation", "--vos", "oops")
        assert code == 2 and "error" in text
        code, text = run_cli("federation", "--adoption", "1.5")
        assert code == 2 and "adoption" in text
        code, text = run_cli("federation", "--sites", "2", "--brokers", "5")
        assert code == 2 and "n_brokers" in text
        # downstream grid-parameter errors also exit 2, no traceback
        code, text = run_cli("federation", "--utilization", "2.0")
        assert code == 2 and "error" in text and "utilization" in text


class TestWeather:
    def test_storm_run_reports_weather_and_health(self):
        code, text = run_cli(
            "weather", "--regime", "storms", "--strategy", "delayed",
            "--tasks", "30",
        )
        assert code == 0
        assert "30 delayed tasks under storms weather" in text
        assert "self-healing off" in text
        assert "weather:" in text and "outages" in text
        assert "site health:" in text

    def test_self_healing_flag_reports_agent_counters(self):
        code, text = run_cli(
            "weather", "--regime", "black-hole", "--tasks", "30",
            "--self-healing",
        )
        assert code == 0
        assert "self-healing on" in text
        assert "failures detected" in text and "resubmissions" in text

    def test_bad_arguments(self):
        code, text = run_cli("weather", "--tasks", "0")
        assert code == 2 and "n_tasks" in text
        code, text = run_cli("weather", "--t-inf", "-5")
        assert code == 2 and "t_inf" in text


class TestChaos:
    def test_standard_schedules_pass_the_audit(self):
        code, text = run_cli("chaos", "--tasks", "10", "--horizon", "21600")
        assert code == 0
        assert "task-conservation audit" in text
        for schedule in ("outage-mid-bucket", "dup-on-retry", "storm-broker-site"):
            assert schedule in text
        assert "VIOLATED" not in text
        assert "every task accounted for exactly once" in text

    def test_generated_schedules_ride_along(self):
        code, text = run_cli(
            "chaos", "--tasks", "8", "--horizon", "21600", "--schedules", "2"
        )
        assert code == 0
        assert "generated#1" in text and "generated#2" in text

    def test_bad_arguments(self):
        code, text = run_cli("chaos", "--tasks", "0")
        assert code == 2 and "n_tasks" in text


class TestTraceReport:
    def test_trace_then_report_round_trip(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        code, text = run_cli(
            "chaos",
            "--schedule",
            "storm-broker-site",
            "--trace",
            str(trace),
            "--tasks",
            "10",
            "--horizon",
            "21600",
        )
        assert code == 0
        assert trace.exists()
        assert f"wrote {trace}" in text
        # only the named schedule ran
        assert "storm-broker-site" in text
        assert "dup-on-retry" not in text

        report_out = tmp_path / "report.txt"
        gwf = tmp_path / "trace.gwf"
        code, text = run_cli(
            "report", str(trace), "--out", str(report_out), "--gwf", str(gwf)
        )
        assert code == 0
        assert "Latency decomposition by strategy" in text
        assert "Latency decomposition by VO" in text
        assert "Latency decomposition by strategy" in report_out.read_text()
        assert gwf.exists() and "GWF rows" in text

    def test_trace_requires_schedule(self, tmp_path):
        code, text = run_cli("chaos", "--trace", str(tmp_path / "t.jsonl"))
        assert code == 2 and "--trace requires --schedule" in text

    def test_trace_rejects_matrix(self, tmp_path):
        code, text = run_cli(
            "chaos",
            "--matrix",
            "--schedule",
            "dup-on-retry",
            "--trace",
            str(tmp_path / "t.jsonl"),
        )
        assert code == 2 and "incompatible with --matrix" in text

    def test_unknown_schedule_lists_available(self):
        code, text = run_cli("chaos", "--schedule", "nope")
        assert code == 2
        assert "unknown schedule" in text and "storm-broker-site" in text

    def test_report_unreadable_trace(self, tmp_path):
        code, text = run_cli("report", str(tmp_path / "missing.jsonl"))
        assert code == 2 and "cannot read trace" in text

    def test_report_on_empty_trace_still_succeeds(self, tmp_path):
        trace = tmp_path / "empty.jsonl"
        trace.write_text("# no events\n", encoding="utf-8")
        code, text = run_cli("report", str(trace))
        assert code == 0
        assert "0 completed tasks" in text


class TestBench:
    def test_bench_invokes_harness_with_passthrough_flags(self):
        from repro.cli import _cmd_bench, build_parser

        args = build_parser().parse_args(
            ["bench", "--update", "--threshold", "2.0", "--report", "r.txt"]
        )
        calls = []
        out = io.StringIO()
        code = _cmd_bench(args, out, runner=lambda cmd: calls.append(cmd) or 0)
        assert code == 0
        (cmd,) = calls
        assert cmd[1].endswith("run_benchmarks.py")
        assert "--update" in cmd
        assert cmd[cmd.index("--threshold") + 1] == "2.0"
        assert cmd[cmd.index("--report") + 1] == "r.txt"

    def test_bench_filter_passthrough(self):
        from repro.cli import _cmd_bench, build_parser

        args = build_parser().parse_args(["bench", "--filter", "probe_day"])
        calls = []
        code = _cmd_bench(
            args, io.StringIO(), runner=lambda cmd: calls.append(cmd) or 0
        )
        assert code == 0
        (cmd,) = calls
        assert cmd[cmd.index("--filter") + 1] == "probe_day"

    def test_bench_propagates_harness_exit_code(self):
        from repro.cli import _cmd_bench, build_parser

        args = build_parser().parse_args(["bench"])
        code = _cmd_bench(args, io.StringIO(), runner=lambda cmd: 1)
        assert code == 1

    def test_bench_profile_passthrough(self):
        from repro.cli import _cmd_bench, build_parser

        args = build_parser().parse_args(
            ["bench", "--profile", "--profile-rows", "40", "--filter", "pop"]
        )
        calls = []
        code = _cmd_bench(
            args, io.StringIO(), runner=lambda cmd: calls.append(cmd) or 0
        )
        assert code == 0
        (cmd,) = calls
        assert "--profile" in cmd
        assert cmd[cmd.index("--profile-rows") + 1] == "40"

    def test_bench_profile_out_passthrough(self):
        from repro.cli import _cmd_bench, build_parser

        args = build_parser().parse_args(
            ["bench", "--profile", "--profile-out", "prof.txt"]
        )
        calls = []
        code = _cmd_bench(
            args, io.StringIO(), runner=lambda cmd: calls.append(cmd) or 0
        )
        assert code == 0
        (cmd,) = calls
        assert cmd[cmd.index("--profile-out") + 1] == "prof.txt"

    def test_bench_harness_refuses_profile_out_without_profile(self):
        import importlib.util
        from pathlib import Path

        script = (
            Path(__file__).resolve().parents[1] / "benchmarks" / "run_benchmarks.py"
        )
        spec = importlib.util.spec_from_file_location("run_benchmarks", script)
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        with pytest.raises(SystemExit, match="--profile-out"):
            mod.main(["--profile-out", "p.txt"])

    def test_bench_harness_refuses_profile_with_update(self):
        import importlib.util
        from pathlib import Path

        script = (
            Path(__file__).resolve().parents[1] / "benchmarks" / "run_benchmarks.py"
        )
        spec = importlib.util.spec_from_file_location("run_benchmarks", script)
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        with pytest.raises(SystemExit, match="--update with --profile"):
            mod.main(["--update", "--profile"])

    def test_bench_harness_profile_disables_benchmarking(
        self, tmp_path, monkeypatch
    ):
        """Profile mode must not nest pytest-benchmark's instrumentation
        under the outer cProfile (its pause/resume breaks there) — the
        benches run once, disabled, and no JSON report is requested."""
        import importlib.util
        from pathlib import Path

        script = (
            Path(__file__).resolve().parents[1] / "benchmarks" / "run_benchmarks.py"
        )
        spec = importlib.util.spec_from_file_location("run_benchmarks", script)
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        calls = []

        class _Proc:
            returncode = 0

        monkeypatch.setattr(
            mod.subprocess, "run", lambda cmd, **kw: calls.append(cmd) or _Proc()
        )
        out = mod.run_pytest_benchmarks(
            [Path("x.py")], profile_path=tmp_path / "x.prof"
        )
        assert out == {}
        (cmd,) = calls
        assert "cProfile" in cmd and "--benchmark-disable" in cmd
        assert not any(str(a).startswith("--benchmark-json") for a in cmd)

    def test_bench_harness_renders_profile_dump(self, tmp_path):
        import cProfile
        import importlib.util
        from pathlib import Path

        script = (
            Path(__file__).resolve().parents[1] / "benchmarks" / "run_benchmarks.py"
        )
        spec = importlib.util.spec_from_file_location("run_benchmarks", script)
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        dump = tmp_path / "x.prof"
        cProfile.run("sum(range(1000))", str(dump))
        table = mod.render_profile(dump, 5)
        assert "cumulative" in table and "tottime" in table


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0
        assert capsys.readouterr().out.strip()

    def test_module_entry_point(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0
        assert "table1" in proc.stdout
