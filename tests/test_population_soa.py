"""The struct-of-arrays population pool and the sharded runtime.

Two laws are pinned here:

* the SoA pool (:mod:`repro.population.soa`) reproduces the legacy
  per-task TaskCore driver **bit-for-bit** on every site x WMS engine
  corner — same latencies, same jobs-per-task, same broker dispatch
  counts, same fair-share usage shares;
* the sharded runtime (:mod:`repro.population.shard`) is deterministic
  for a fixed shard count, and its ``shards=1`` degenerate case is the
  single-process driver itself.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.strategies import (
    DelayedResubmission,
    MultipleSubmission,
    SingleResubmission,
)
from repro.gridsim import FaultModel, GridConfig, SiteConfig, warmed_snapshot
from repro.gridsim.grid import warmed_grid
from repro.population import (
    FleetSpec,
    PopulationSpec,
    run_population,
    run_population_sharded,
)
from repro.population.soa import pool_supported
from repro.traces.generator import DiurnalProfile

SHARES = (("biomed", 0.4), ("atlas", 0.35), ("cms", 0.25))

CORNERS = [
    ("vector", "batched"),
    ("vector", "event"),
    ("event", "batched"),
    ("event", "event"),
]


def corner_config(site_engine: str, wms_engine: str) -> GridConfig:
    sites = tuple(
        SiteConfig(
            name=f"s{i:02d}",
            n_cores=48,
            utilization=0.7,
            runtime_median=1500.0,
            vo_shares=SHARES,
        )
        for i in range(4)
    )
    return GridConfig(
        sites=sites,
        faults=FaultModel(p_lost=0.01, p_stuck=0.01),
        site_engine=site_engine,
        wms_engine=wms_engine,
    )


def mixed_spec(n: int = 240) -> PopulationSpec:
    """All three paper strategies, diurnal launches, a short window."""
    return PopulationSpec(
        fleets=(
            FleetSpec(
                "biomed", SingleResubmission(t_inf=4000.0), n, runtime=300.0
            ),
            FleetSpec(
                "atlas",
                MultipleSubmission(b=3, t_inf=4000.0),
                (2 * n) // 3,
                runtime=300.0,
            ),
            FleetSpec(
                "cms",
                DelayedResubmission(t0=3500.0, t_inf=6000.0),
                (2 * n) // 3,
                runtime=300.0,
            ),
        ),
        window=20_000.0,
        diurnal=DiurnalProfile(amplitude=0.4),
    )


def run_engine(config: GridConfig, engine: str):
    snap = warmed_snapshot(config, seed=17, duration=2 * 3600.0)
    return run_population(snap.restore(), mixed_spec(), seed=9, engine=engine)


def assert_identical(a, b) -> None:
    assert len(a.fleets) == len(b.fleets)
    for x, y in zip(a.fleets, b.fleets):
        np.testing.assert_array_equal(x.j, y.j)
        np.testing.assert_array_equal(x.jobs_submitted, y.jobs_submitted)
        assert x.gave_up == y.gave_up
    assert a.duration == b.duration
    assert a.jobs_lost == b.jobs_lost
    assert a.jobs_stuck == b.jobs_stuck
    assert a.broker_dispatches == b.broker_dispatches
    assert a.site_usage_shares == b.site_usage_shares


class TestSoaOracleEquivalence:
    @pytest.mark.parametrize("site_engine,wms_engine", CORNERS)
    def test_soa_matches_legacy(self, site_engine, wms_engine):
        """Pool vs TaskCore oracle, bit-for-bit, on every engine corner."""
        config = corner_config(site_engine, wms_engine)
        legacy = run_engine(config, "legacy")
        soa = run_engine(config, "soa")
        assert_identical(legacy, soa)
        assert soa.total_finished > 0

    def test_auto_picks_pool_on_calm_grids(self):
        config = corner_config("vector", "batched")
        assert_identical(run_engine(config, None), run_engine(config, "soa"))

    def test_auto_falls_back_when_unsupported(self):
        """Tracing hooks the per-task surface: auto must go legacy."""
        config = corner_config("vector", "batched")
        config = GridConfig(
            sites=config.sites,
            faults=config.faults,
            site_engine=config.site_engine,
            wms_engine=config.wms_engine,
            tracing=True,
        )
        snap = warmed_snapshot(config, seed=17, duration=2 * 3600.0)
        assert not pool_supported(snap.restore(), mixed_spec().fleets)
        with pytest.raises(ValueError, match="engine='soa'"):
            run_population(
                snap.restore(), mixed_spec(), seed=9, engine="soa"
            )
        result = run_population(snap.restore(), mixed_spec(), seed=9)
        assert result.total_finished > 0

    def test_unknown_engine_rejected(self):
        config = corner_config("vector", "batched")
        snap = warmed_snapshot(config, seed=17, duration=2 * 3600.0)
        with pytest.raises(ValueError, match="unknown population engine"):
            run_population(
                snap.restore(), mixed_spec(), seed=9, engine="turbo"
            )


class TestEmptyPopulations:
    def test_zero_task_fleet_contributes_nothing(self):
        config = corner_config("vector", "batched")
        spec = mixed_spec(60)
        empty = FleetSpec("cms", SingleResubmission(t_inf=4000.0), 0)
        padded = PopulationSpec(
            fleets=spec.fleets + (empty,),
            window=spec.window,
            diurnal=spec.diurnal,
        )
        snap = warmed_snapshot(config, seed=17, duration=2 * 3600.0)
        result = run_population(snap.restore(), padded, seed=9)
        assert result.fleets[-1].j.size == 0
        assert result.fleets[-1].gave_up == 0
        assert result.total_finished > 0

    def test_empty_spec_returns_empty_result(self):
        config = corner_config("vector", "batched")
        snap = warmed_snapshot(config, seed=17, duration=2 * 3600.0)
        grid = snap.restore()
        before = grid.now
        result = run_population(grid, PopulationSpec(fleets=()), seed=9)
        assert result.fleets == ()
        assert result.duration == 0.0
        assert grid.now == before  # the grid never advanced

    def test_all_zero_fleets_return_empty_outcomes(self):
        config = corner_config("vector", "batched")
        spec = PopulationSpec(
            fleets=(
                FleetSpec("biomed", SingleResubmission(t_inf=4000.0), 0),
                FleetSpec("atlas", MultipleSubmission(b=2, t_inf=4000.0), 0),
            )
        )
        snap = warmed_snapshot(config, seed=17, duration=2 * 3600.0)
        result = run_population(snap.restore(), spec, seed=9)
        assert len(result.fleets) == 2
        assert all(f.j.size == 0 and f.gave_up == 0 for f in result.fleets)

    def test_empty_spec_sharded(self):
        config = shard_config()
        result = run_population_sharded(
            config,
            PopulationSpec(fleets=()),
            shards=2,
            seed=9,
            grid_seed=5,
            warm=3600.0,
        )
        assert result.fleets == ()
        assert result.broker_dispatches == (0, 0)


def shard_config(n_sites: int = 6) -> GridConfig:
    sites = tuple(
        SiteConfig(
            name=f"s{i:02d}",
            n_cores=48,
            utilization=0.7,
            runtime_median=1500.0,
            vo_shares=SHARES,
        )
        for i in range(n_sites)
    )
    return GridConfig(sites=sites, wms_engine="batched")


class TestShardedRuntime:
    def test_determinism_for_fixed_shard_count(self):
        """Same seed + same shard count => bit-identical outcomes."""
        config = shard_config()
        spec = mixed_spec(150)
        kw = dict(shards=2, seed=9, grid_seed=5, warm=3600.0)
        a = run_population_sharded(config, spec, **kw)
        b = run_population_sharded(config, spec, **kw)
        assert_identical(a, b)
        assert a.total_finished + a.total_gave_up == spec.total_tasks
        assert len(a.broker_dispatches) == 2

    def test_one_shard_is_the_driver(self):
        """shards=1 delegates to run_population on the warmed grid."""
        config = shard_config()
        spec = mixed_spec(100)
        sharded = run_population_sharded(
            config, spec, shards=1, seed=9, grid_seed=5, warm=3600.0
        )
        direct = run_population(
            warmed_grid(config, 5, 3600.0), spec, seed=9
        )
        assert_identical(sharded, direct)

    def test_three_shard_conservation(self):
        config = shard_config()
        spec = mixed_spec(120)
        result = run_population_sharded(
            config, spec, shards=3, seed=9, grid_seed=5, warm=3600.0
        )
        assert result.total_finished + result.total_gave_up == spec.total_tasks
        assert result.total_finished > 0
        assert len(result.broker_dispatches) == 3
        # every task that finished submitted at least one grid job
        assert sum(result.broker_dispatches) >= result.total_finished

    def test_shard_count_validation(self):
        config = shard_config(n_sites=2)
        spec = mixed_spec(30)
        with pytest.raises(ValueError, match="exceeds"):
            run_population_sharded(
                config, spec, shards=3, seed=9, grid_seed=5, warm=3600.0
            )
        with pytest.raises(ValueError, match="positive int"):
            run_population_sharded(
                config, spec, shards=0, seed=9, grid_seed=5, warm=3600.0
            )

    def test_unshardable_features_rejected(self):
        spec = mixed_spec(30)
        with pytest.raises(ValueError, match="wms_engine='batched'"):
            run_population_sharded(
                GridConfig(sites=shard_config().sites, wms_engine="event"),
                spec,
                shards=2,
                seed=9,
                grid_seed=5,
                warm=3600.0,
            )
        with pytest.raises(ValueError, match="process fabric"):
            run_population_sharded(
                # pin the batched engine so this corner still tests the
                # tracing rejection when REPRO_WMS_ENGINE=event
                GridConfig(
                    sites=shard_config().sites,
                    wms_engine="batched",
                    tracing=True,
                ),
                spec,
                shards=2,
                seed=9,
                grid_seed=5,
                warm=3600.0,
            )
        pinned = PopulationSpec(
            fleets=(
                FleetSpec(
                    "biomed", SingleResubmission(t_inf=4000.0), 10, broker=0
                ),
            )
        )
        with pytest.raises(ValueError, match="pins a broker"):
            run_population_sharded(
                shard_config(),
                pinned,
                shards=2,
                seed=9,
                grid_seed=5,
                warm=3600.0,
            )

    def test_grid_seed_must_be_int(self):
        with pytest.raises(TypeError, match="integer grid_seed"):
            run_population_sharded(
                shard_config(),
                mixed_spec(30),
                shards=2,
                seed=9,
                grid_seed=np.random.default_rng(0),
                warm=3600.0,
            )
