"""WMS federation: broker ownership, view staleness, and routing.

The degenerate contract is the anchor: one broker owning every site with
zero extra lag must be *byte-identical* to the historical single-WMS
grid — same RNG streams, same probe traces.  On top of that, federated
brokers must refresh owned sites on the normal cadence and remote sites
only after the extra lag, and submissions must honour explicit and
round-robin routing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gridsim import (
    BrokerConfig,
    FaultModel,
    FederatedBroker,
    GridConfig,
    GridSimulator,
    Job,
    ProbeExperiment,
    SiteConfig,
    Simulator,
    VectorComputingElement,
    federated_grid_config,
)


def two_site_config(**kw) -> GridConfig:
    defaults = dict(
        sites=(SiteConfig("a", 8), SiteConfig("b", 16)),
        matchmaking_median=30.0,
        faults=FaultModel(p_lost=0.02, p_stuck=0.02),
    )
    defaults.update(kw)
    return GridConfig(**defaults)


class TestBrokerConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            BrokerConfig("", ("a",))
        with pytest.raises(ValueError, match="at least one site"):
            BrokerConfig("w", ())
        with pytest.raises(ValueError, match="duplicate site"):
            BrokerConfig("w", ("a", "a"))
        with pytest.raises(ValueError, match="info_lag"):
            BrokerConfig("w", ("a",), info_lag=-1.0)

    def test_grid_config_validation(self):
        with pytest.raises(ValueError, match="duplicate broker name"):
            two_site_config(
                brokers=(BrokerConfig("w", ("a",)), BrokerConfig("w", ("b",)))
            )
        with pytest.raises(ValueError, match="unknown site"):
            two_site_config(brokers=(BrokerConfig("w", ("zz",)),))


class TestDegenerateByteIdentity:
    def test_single_broker_zero_lag_equals_plain_wms(self):
        plain = two_site_config()
        onebroker = two_site_config(
            brokers=(BrokerConfig("wms", ("a", "b"), info_lag=0.0),)
        )
        traces = []
        for cfg in (plain, onebroker):
            g = GridSimulator(cfg, seed=19)
            g.warm_up(3600.0)
            traces.append(
                ProbeExperiment(g, n_slots=6, timeout=4000.0).run(30_000.0)
            )
        tp, tb = traces
        np.testing.assert_array_equal(tp.submit_times, tb.submit_times)
        np.testing.assert_array_equal(tp.latencies, tb.latencies)
        np.testing.assert_array_equal(tp.status_codes, tb.status_codes)

    def test_adding_brokers_keeps_background_streams(self):
        """Extra broker RNG streams ride behind the historical layout, so
        the physical grid (background draws) is unperturbed."""
        plain = GridSimulator(two_site_config(), seed=5)
        fed = GridSimulator(
            two_site_config(
                brokers=(
                    BrokerConfig("w1", ("a",)),
                    BrokerConfig("w2", ("b",)),
                )
            ),
            seed=5,
        )
        for g in (plain, fed):
            g.warm_up(12 * 3600.0)
        assert [bg.jobs_generated for bg in plain.background] == [
            bg.jobs_generated for bg in fed.background
        ]
        assert [s.jobs_started for s in plain.sites] == [
            s.jobs_started for s in fed.sites
        ]


class TestStaleViews:
    def make_broker(self, info_lag=1000.0, info_refresh=300.0):
        sim = Simulator()
        sites = [
            VectorComputingElement("own", 2, sim),
            VectorComputingElement("far", 2, sim),
        ]
        broker = FederatedBroker(
            sim,
            sites,
            np.random.default_rng(0),
            owned=("own",),
            info_lag=info_lag,
            name="w",
            info_refresh=info_refresh,
            ranking_noise=0.0,
        )
        return sim, sites, broker

    def test_remote_view_lags_behind_owned(self):
        sim, (own, far), broker = self.make_broker()
        np.testing.assert_array_equal(broker.current_snapshot(), [0.0, 0.0])
        # pile identical load on both sites
        for site in (own, far):
            for _ in range(6):
                site.enqueue(Job(runtime=5000.0))
        # after one refresh period the owned estimate moved, remote not yet
        sim.run_until(301.0)
        snap = broker.current_snapshot().copy()
        assert snap[0] > 0.0
        assert snap[1] == 0.0
        # after refresh + lag the remote estimate catches up
        sim.run_until(1302.0)
        snap = broker.current_snapshot()
        assert snap[1] > 0.0

    def test_zero_lag_refreshes_together(self):
        sim, (own, far), broker = self.make_broker(info_lag=0.0)
        for site in (own, far):
            site.enqueue(Job(runtime=5000.0))
            site.enqueue(Job(runtime=5000.0))
            site.enqueue(Job(runtime=5000.0))
        sim.run_until(301.0)
        snap = broker.current_snapshot()
        assert snap[0] > 0.0 and snap[1] > 0.0

    def test_owned_sites_listing_and_validation(self):
        sim, sites, broker = self.make_broker()
        assert broker.owned_sites() == ["own"]
        with pytest.raises(ValueError, match="unknown site"):
            FederatedBroker(
                sim,
                sites,
                np.random.default_rng(0),
                owned=("nosuch",),
                name="bad",
            )


class TestRouting:
    def fed_grid(self, seed=7) -> GridSimulator:
        return GridSimulator(
            two_site_config(
                faults=FaultModel(),  # keep every submission routable
                brokers=(
                    BrokerConfig("w1", ("a",)),
                    BrokerConfig("w2", ("b",)),
                ),
            ),
            seed=seed,
        )

    def test_round_robin_default(self):
        g = self.fed_grid()
        for _ in range(10):
            g.submit(Job(runtime=1.0))
        g.run_until(5000.0)
        assert [b.dispatch_count for b in g.brokers] == [5, 5]

    def test_explicit_routing_by_name_and_index(self):
        g = self.fed_grid()
        for _ in range(4):
            g.submit(Job(runtime=1.0), via="w2")
        g.submit(Job(runtime=1.0), via=0)
        g.run_until(5000.0)
        assert g.brokers[1].dispatch_count == 4
        assert g.brokers[0].dispatch_count == 1

    def test_unknown_broker_raises(self):
        g = self.fed_grid()
        with pytest.raises(ValueError, match="unknown broker"):
            g.submit(Job(runtime=1.0), via="nosuch")
        with pytest.raises(ValueError, match="out of range"):
            g.submit(Job(runtime=1.0), via=2)
        with pytest.raises(ValueError, match="out of range"):
            g.submit(Job(runtime=1.0), via=-1)

    def test_wms_is_primary_broker(self):
        g = self.fed_grid()
        assert g.wms is g.brokers[0]
        plain = GridSimulator(two_site_config(), seed=1)
        assert plain.brokers == [plain.wms]


class TestFederatedGridConfig:
    def test_structure(self):
        cfg = federated_grid_config(n_sites=6, n_brokers=3)
        assert len(cfg.sites) == 6
        assert len(cfg.brokers) == 3
        owned = [s for b in cfg.brokers for s in b.sites]
        assert sorted(owned) == sorted(s.name for s in cfg.sites)
        assert all(len(sc.vo_shares) == 3 for sc in cfg.sites)

    def test_validation(self):
        with pytest.raises(ValueError, match="n_brokers"):
            federated_grid_config(n_sites=2, n_brokers=3)
        with pytest.raises(ValueError, match="n_sites"):
            federated_grid_config(n_sites=0)

    def test_runs_end_to_end(self):
        cfg = federated_grid_config(n_sites=4, n_brokers=2, seed=3)
        g = GridSimulator(cfg, seed=3)
        g.warm_up(3600.0)
        trace = ProbeExperiment(g, n_slots=4, timeout=4000.0).run(10_000.0)
        assert len(trace) > 10
        assert sum(b.dispatch_count for b in g.brokers) > 0
