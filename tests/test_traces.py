"""Tests for probe records, trace sets, calibration and synthesis."""

import numpy as np
import pytest

from repro.traces import (
    PAPER_TABLE1,
    TraceSet,
    WEEKLY_SETS,
    WEEKS,
    calibrate_lognormal,
    synthesize_all,
    synthesize_week,
)
from repro.traces.paper import AGGREGATE
from repro.traces.records import PROBE_TIMEOUT, JobStatus, ProbeRecord


class TestProbeRecord:
    def test_completed_record(self):
        r = ProbeRecord(job_id=1, submit_time=10.0, latency=120.0,
                        status=JobStatus.COMPLETED)
        assert not r.is_outlier

    def test_outlier_records(self):
        for status in (JobStatus.TIMEOUT, JobStatus.FAULT):
            r = ProbeRecord(job_id=1, submit_time=0.0, latency=float("inf"),
                            status=status)
            assert r.is_outlier

    def test_completed_requires_finite_latency(self):
        with pytest.raises(ValueError, match="finite"):
            ProbeRecord(1, 0.0, float("inf"), JobStatus.COMPLETED)

    def test_outlier_requires_inf_latency(self):
        with pytest.raises(ValueError, match="inf"):
            ProbeRecord(1, 0.0, 100.0, JobStatus.TIMEOUT)

    def test_rejects_nan_latency(self):
        with pytest.raises(ValueError, match="NaN"):
            ProbeRecord(1, 0.0, float("nan"), JobStatus.COMPLETED)

    def test_rejects_negative_submit(self):
        with pytest.raises(ValueError):
            ProbeRecord(1, -1.0, 100.0, JobStatus.COMPLETED)


class TestTraceSet:
    def make(self) -> TraceSet:
        return TraceSet(
            name="t",
            submit_times=np.array([0.0, 10.0, 20.0, 30.0]),
            latencies=np.array([100.0, 200.0, np.inf, 400.0]),
            status_codes=np.array([0, 0, 1, 0]),
        )

    def test_basic_stats(self):
        t = self.make()
        assert len(t) == 4
        assert t.n_outliers == 1
        assert t.outlier_ratio == 0.25
        assert t.mean_latency() == pytest.approx(700 / 3)
        np.testing.assert_array_equal(t.successful_latencies, [100.0, 200.0, 400.0])

    def test_bounded_mean_counts_outliers_at_timeout(self):
        t = self.make()
        expected = (100 + 200 + PROBE_TIMEOUT + 400) / 4
        assert t.bounded_mean_latency() == pytest.approx(expected)

    def test_summary_keys(self):
        s = self.make().summary()
        assert set(s) == {
            "n_jobs", "n_outliers", "rho", "mean_latency",
            "bounded_mean_latency", "std_latency",
        }

    def test_validation_mismatched_columns(self):
        with pytest.raises(ValueError, match="lengths"):
            TraceSet("t", np.zeros(2), np.zeros(3), np.zeros(3, dtype=np.int8))

    def test_validation_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            TraceSet("t", np.zeros(0), np.zeros(0), np.zeros(0, dtype=np.int8))

    def test_validation_outlier_must_be_inf(self):
        with pytest.raises(ValueError, match="inf"):
            TraceSet("t", np.zeros(1), np.array([5.0]), np.array([1], dtype=np.int8))

    def test_validation_completed_must_be_finite(self):
        with pytest.raises(ValueError, match="finite"):
            TraceSet("t", np.zeros(1), np.array([np.inf]), np.array([0], dtype=np.int8))

    def test_validation_latency_above_timeout(self):
        with pytest.raises(ValueError, match="timeout"):
            TraceSet("t", np.zeros(1), np.array([20_000.0]),
                     np.array([0], dtype=np.int8))

    def test_iteration_yields_records(self):
        records = list(self.make())
        assert len(records) == 4
        assert records[2].status is JobStatus.TIMEOUT
        assert records[0].latency == 100.0

    def test_from_records_roundtrip(self):
        t = self.make()
        t2 = TraceSet.from_records("t2", list(t))
        np.testing.assert_array_equal(t2.latencies, t.latencies)
        np.testing.assert_array_equal(t2.status_codes, t.status_codes)

    def test_merge(self):
        t = self.make()
        merged = TraceSet.merge("m", [t, t])
        assert len(merged) == 8
        assert merged.outlier_ratio == 0.25

    def test_merge_rejects_mixed_timeouts(self):
        t = self.make()
        other = TraceSet("o", np.zeros(1), np.array([5.0]),
                         np.array([0], dtype=np.int8), timeout=500.0)
        with pytest.raises(ValueError, match="timeout"):
            TraceSet.merge("m", [t, other])

    def test_merge_requires_parts(self):
        with pytest.raises(ValueError):
            TraceSet.merge("m", [])

    def test_time_window(self):
        t = self.make()
        w = t.time_window(5.0, 25.0)
        assert len(w) == 2
        with pytest.raises(ValueError, match="empty"):
            t.time_window(5.0, 5.0)
        with pytest.raises(ValueError, match="no probes"):
            t.time_window(1000.0, 2000.0)

    def test_to_latency_model(self):
        m = self.make().to_latency_model()
        assert m.rho == pytest.approx(0.25)
        assert m.name == "t"
        assert m.distribution.n_samples == 3

    def test_describe(self):
        assert "t:" in self.make().describe()


class TestCalibration:
    def test_matches_targets(self):
        res = calibrate_lognormal(570.0, 886.0, shift=150.0)
        assert res.achieved_mean == pytest.approx(570.0, rel=1e-3)
        assert res.achieved_std == pytest.approx(886.0, rel=1e-3)
        assert res.relative_error < 1e-3

    def test_no_shift(self):
        res = calibrate_lognormal(400.0, 300.0)
        assert res.achieved_mean == pytest.approx(400.0, rel=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError, match="exceed the shift"):
            calibrate_lognormal(100.0, 50.0, shift=150.0)
        with pytest.raises(ValueError, match="below the timeout"):
            calibrate_lognormal(20_000.0, 100.0)
        with pytest.raises(ValueError):
            calibrate_lognormal(-5.0, 100.0)

    def test_every_paper_week_is_calibratable(self):
        # the solver must handle all 13 Table-1 rows (CV from 0.7 to 2.2)
        for name, stats in PAPER_TABLE1.items():
            if name == AGGREGATE:
                continue
            res = calibrate_lognormal(stats.mean_less, stats.sigma_r, shift=150.0)
            assert res.relative_error < 1e-3, name


class TestPaperSynthesis:
    def test_rho_reconstruction_is_round(self):
        # the recovered outlier ratios are the paper's round numbers
        assert PAPER_TABLE1["2006-IX"].rho == pytest.approx(0.05, abs=0.001)
        assert PAPER_TABLE1["2007-36"].rho == pytest.approx(0.24, abs=0.001)
        assert PAPER_TABLE1["2007-37"].rho == pytest.approx(0.33, abs=0.001)
        assert PAPER_TABLE1["2008-03"].rho == pytest.approx(0.10, abs=0.001)

    def test_week_statistics_match_table1(self):
        t = synthesize_week("2006-IX", seed=3)
        stats = PAPER_TABLE1["2006-IX"]
        assert t.mean_latency() == pytest.approx(stats.mean_less, rel=0.02)
        assert t.std_latency() == pytest.approx(stats.sigma_r, rel=0.05)
        assert t.outlier_ratio == pytest.approx(stats.rho, abs=0.01)

    def test_bounded_mean_matches_table1(self):
        t = synthesize_week("2007-36", seed=3)
        stats = PAPER_TABLE1["2007-36"]
        assert t.bounded_mean_latency() == pytest.approx(stats.mean_with, rel=0.05)

    def test_deterministic_given_seed(self):
        a = synthesize_week("2007-51", seed=9)
        b = synthesize_week("2007-51", seed=9)
        np.testing.assert_array_equal(a.latencies, b.latencies)

    def test_seeds_differ(self):
        a = synthesize_week("2007-51", seed=1)
        b = synthesize_week("2007-51", seed=2)
        assert not np.array_equal(a.latencies, b.latencies)

    def test_n_jobs_override(self):
        t = synthesize_week("2007-51", seed=1, n_jobs=100)
        assert len(t) == 100

    def test_unknown_week(self):
        with pytest.raises(ValueError, match="unknown trace set"):
            synthesize_week("2012-01", seed=0)

    def test_aggregate_must_use_synthesize_all(self):
        with pytest.raises(ValueError, match="union"):
            synthesize_week(AGGREGATE, seed=0)

    def test_synthesize_all_structure(self):
        traces = synthesize_all(seed=5)
        assert set(traces) == set(PAPER_TABLE1)
        assert len(traces[AGGREGATE]) == sum(
            len(traces[w]) for w in WEEKLY_SETS
        )
        total = sum(len(traces[w]) for w in WEEKS)
        assert total == 10_893  # the paper's probe count

    def test_aggregate_statistics_consistent_with_table1(self):
        # the 2007/08 row should emerge from the union of the weekly sets
        traces = synthesize_all(seed=5)
        agg = traces[AGGREGATE]
        stats = PAPER_TABLE1[AGGREGATE]
        assert agg.mean_latency() == pytest.approx(stats.mean_less, rel=0.05)
        assert agg.outlier_ratio == pytest.approx(stats.rho, abs=0.03)

    def test_iid_sampling_close_but_noisier(self):
        t = synthesize_week("2006-IX", seed=3, stratified=False)
        stats = PAPER_TABLE1["2006-IX"]
        assert t.mean_latency() == pytest.approx(stats.mean_less, rel=0.15)

    def test_submit_times_sorted_within_campaign(self):
        t = synthesize_week("2006-IX", seed=3)
        assert (np.diff(t.submit_times) >= 0).all()
        assert t.submit_times[-1] <= 7 * 24 * 3600.0
