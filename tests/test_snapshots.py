"""Warmed-grid snapshots: forked grids must be bit-identical continuations.

The contract: a clone (or ``warmed_grid`` cache hit) continues exactly
as an independently constructed, identically seeded and warmed grid
would — same RNG states, event heap, site queues and counters — so
experiments may replace repeated same-seed warm-ups with forks without
changing a single rendered number.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.strategies import MultipleSubmission
from repro.gridsim import (
    FaultModel,
    GridConfig,
    GridSimulator,
    ProbeExperiment,
    SiteConfig,
    default_grid_config,
    run_strategy_on_grid,
    warmed_grid,
)
from repro.gridsim.grid import _WARM_CACHE
from repro.gridsim.jobs import Job


@pytest.fixture()
def warm_cache_defaults():
    """Restore the warm-cache limits (and contents) after a test tweaks them."""
    from repro.gridsim import grid as grid_mod

    entries, size = grid_mod._WARM_CACHE_MAX, grid_mod._WARM_CACHE_MAX_BYTES
    yield
    _WARM_CACHE.clear()
    grid_mod.configure_warm_cache(max_entries=entries, max_bytes=size)


def config(**kw) -> GridConfig:
    defaults = dict(
        sites=(
            SiteConfig("a", 8, utilization=0.8, runtime_median=600.0),
            SiteConfig("b", 16, utilization=0.85, runtime_median=900.0),
            SiteConfig("c", 4, utilization=0.9, runtime_median=900.0),
        ),
        matchmaking_median=30.0,
        faults=FaultModel(p_lost=0.02, p_stuck=0.02),
    )
    defaults.update(kw)
    return GridConfig(**defaults)


def fresh_warmed(cfg, seed, duration):
    g = GridSimulator(cfg, seed=seed)
    g.warm_up(duration)
    return g


def state_fingerprint(grid) -> tuple:
    """Observable state that any two equivalent grids must share."""
    return (
        grid.now,
        grid.sim.events_processed,
        grid.sim.pending,
        tuple(s.queue_length for s in grid.sites),
        tuple(s.busy_cores for s in grid.sites),
        tuple(s.jobs_started for s in grid.sites),
        tuple(s.jobs_completed for s in grid.sites),
        tuple(bg.jobs_generated for bg in grid.background),
    )


class TestCloneEquivalence:
    def test_clone_matches_fresh_warmup_immediately(self):
        cfg = config()
        clone = fresh_warmed(cfg, 11, 7200.0).clone()
        independent = fresh_warmed(cfg, 11, 7200.0)
        assert state_fingerprint(clone) == state_fingerprint(independent)

    def test_clone_replays_identically_to_fresh_warmup(self):
        """The crux: continuations beyond the fork are bit-identical."""
        cfg = config()
        clone = fresh_warmed(cfg, 13, 7200.0).clone()
        independent = fresh_warmed(cfg, 13, 7200.0)
        for g in (clone, independent):
            g.run_until(g.now + 50_000.0)
        assert state_fingerprint(clone) == state_fingerprint(independent)

    def test_probe_traces_identical_after_fork(self):
        cfg = default_grid_config(n_sites=6, seed=3)
        clone = fresh_warmed(cfg, 17, 3600.0).clone()
        independent = fresh_warmed(cfg, 17, 3600.0)
        ta = ProbeExperiment(clone, n_slots=8, timeout=4000.0).run(30_000.0)
        tb = ProbeExperiment(independent, n_slots=8, timeout=4000.0).run(30_000.0)
        np.testing.assert_array_equal(ta.submit_times, tb.submit_times)
        np.testing.assert_array_equal(ta.latencies, tb.latencies)
        np.testing.assert_array_equal(ta.status_codes, tb.status_codes)

    def test_strategy_outcomes_identical_after_fork(self):
        cfg = config()
        clone = fresh_warmed(cfg, 19, 3600.0).clone()
        independent = fresh_warmed(cfg, 19, 3600.0)
        strat = MultipleSubmission(b=3, t_inf=2000.0)
        oa = run_strategy_on_grid(clone, strat, 25, task_interval=200.0, runtime=60.0)
        ob = run_strategy_on_grid(
            independent, strat, 25, task_interval=200.0, runtime=60.0
        )
        np.testing.assert_array_equal(oa.j, ob.j)
        np.testing.assert_array_equal(oa.jobs_submitted, ob.jobs_submitted)
        assert oa.gave_up == ob.gave_up

    def test_forks_are_independent(self):
        """Running one fork does not disturb its sibling."""
        master = fresh_warmed(config(), 23, 3600.0)
        snap = master.snapshot()
        a, b = snap.restore(), snap.restore()
        fp_b = state_fingerprint(b)
        a.run_until(a.now + 20_000.0)
        assert state_fingerprint(b) == fp_b
        b.run_until(b.now + 20_000.0)
        assert state_fingerprint(a) == state_fingerprint(b)

    def test_snapshot_survives_master_running_on(self):
        master = fresh_warmed(config(), 29, 3600.0)
        snap = master.snapshot()
        assert snap.time == master.now
        master.run_until(master.now + 10_000.0)  # master moves on
        fork = snap.restore()
        assert fork.now == snap.time
        independent = fresh_warmed(config(), 29, 3600.0)
        fork.run_until(fork.now + 10_000.0)
        assert state_fingerprint(fork) == state_fingerprint(master)
        del independent


class TestSnapshotGuards:
    def test_cannot_snapshot_after_client_submission(self):
        grid = fresh_warmed(config(), 31, 1800.0)
        grid.submit(Job(runtime=10.0))
        with pytest.raises(RuntimeError, match="pristine"):
            grid.clone()
        with pytest.raises(RuntimeError, match="pristine"):
            grid.snapshot()


class TestWarmedGridFactory:
    def test_cache_hit_equals_fresh_warmup(self):
        _WARM_CACHE.clear()
        cfg = config()
        first = warmed_grid(cfg, seed=37, duration=3600.0)   # builds master
        second = warmed_grid(cfg, seed=37, duration=3600.0)  # cache hit
        independent = fresh_warmed(cfg, 37, 3600.0)
        assert first is not second
        for g in (first, second, independent):
            g.run_until(g.now + 20_000.0)
        assert state_fingerprint(first) == state_fingerprint(independent)
        assert state_fingerprint(second) == state_fingerprint(independent)

    def test_equal_value_configs_share_cache_entries(self):
        _WARM_CACHE.clear()
        warmed_grid(config(), seed=41, duration=1800.0)
        warmed_grid(config(), seed=41, duration=1800.0)
        assert len(_WARM_CACHE) == 1

    def test_distinct_keys_get_distinct_entries(self):
        _WARM_CACHE.clear()
        warmed_grid(config(), seed=1, duration=1800.0)
        warmed_grid(config(), seed=2, duration=1800.0)
        warmed_grid(config(), seed=1, duration=3600.0)
        assert len(_WARM_CACHE) == 3

    def test_cache_entry_cap_is_configurable(self, warm_cache_defaults):
        from repro.gridsim import configure_warm_cache

        _WARM_CACHE.clear()
        configure_warm_cache(max_entries=4)
        for seed in range(7):
            warmed_grid(config(), seed=seed, duration=900.0)
        assert len(_WARM_CACHE) == 4
        # LRU: the newest entries survive
        kept_seeds = sorted(key[1] for key in _WARM_CACHE)
        assert kept_seeds == [3, 4, 5, 6]

    def test_cache_evicts_by_total_pickle_size(self, warm_cache_defaults):
        from repro.gridsim import configure_warm_cache

        _WARM_CACHE.clear()
        configure_warm_cache(max_entries=64)
        for seed in (1, 2, 3):
            warmed_grid(config(), seed=seed, duration=900.0)
        # snapshot sizes vary per seed (and per site engine): budget off
        # the actual sizes so the test is engine-agnostic
        sizes = {key[1]: snap.nbytes for key, snap in _WARM_CACHE.items()}
        assert all(v > 0 for v in sizes.values())
        # budget for exactly the two newest snapshots: the oldest goes
        configure_warm_cache(max_bytes=sizes[2] + sizes[3])
        assert sorted(key[1] for key in _WARM_CACHE) == [2, 3]
        # shrinking to the newest snapshot's own size evicts the other
        configure_warm_cache(max_bytes=sizes[3])
        assert [key[1] for key in _WARM_CACHE] == [3]

    def test_configure_warm_cache_validation(self, warm_cache_defaults):
        from repro.gridsim import configure_warm_cache

        with pytest.raises(ValueError):
            configure_warm_cache(max_entries=0)
        with pytest.raises(ValueError):
            configure_warm_cache(max_bytes=0)

    def test_generator_seeds_bypass_cache(self):
        _WARM_CACHE.clear()
        g = warmed_grid(config(), seed=np.random.default_rng(5), duration=900.0)
        assert g.now == 900.0
        assert len(_WARM_CACHE) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            warmed_grid(config(), seed=1, duration=0.0)
