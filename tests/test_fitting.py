"""Tests for MLE fitting, model selection and truncated moments."""

import numpy as np
import pytest

from repro.distributions import (
    Exponential,
    LogNormal,
    fit_distribution,
    select_model,
    truncated_mean_std,
    truncated_moment,
)
from repro.distributions.fitting import SUPPORTED_FAMILIES


@pytest.fixture(scope="module")
def lognormal_samples():
    return LogNormal(mu=5.5, sigma=0.8).rvs(4000, rng=42)


class TestFitDistribution:
    def test_recovers_lognormal_parameters(self, lognormal_samples):
        res = fit_distribution(lognormal_samples, "lognormal")
        assert res.distribution.mu == pytest.approx(5.5, abs=0.05)
        assert res.distribution.sigma == pytest.approx(0.8, abs=0.05)

    def test_recovers_exponential_rate(self):
        samples = Exponential(rate=0.02).rvs(4000, rng=1)
        res = fit_distribution(samples, "exponential")
        assert res.distribution.rate == pytest.approx(0.02, rel=0.1)

    def test_all_supported_families_fit_something(self, lognormal_samples):
        for family in SUPPORTED_FAMILIES:
            res = fit_distribution(lognormal_samples, family)
            assert res.family == family
            assert np.isfinite(res.aic)
            assert 0 <= res.ks_statistic <= 1

    def test_unknown_family_rejected(self, lognormal_samples):
        with pytest.raises(ValueError, match="unknown family"):
            fit_distribution(lognormal_samples, "cauchy")

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError, match="at least 8"):
            fit_distribution(np.ones(3), "lognormal")

    def test_negative_samples_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            fit_distribution(np.array([-1.0] * 20), "lognormal")

    def test_nonfinite_samples_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            fit_distribution(np.array([1.0] * 20 + [np.inf]), "lognormal")

    def test_summary_mentions_family_and_aic(self, lognormal_samples):
        res = fit_distribution(lognormal_samples, "weibull")
        assert "weibull" in res.summary()
        assert "AIC" in res.summary()

    def test_aic_bic_consistent_with_loglik(self, lognormal_samples):
        res = fit_distribution(lognormal_samples, "lognormal")
        n = res.n_samples
        assert res.aic == pytest.approx(2 * 2 - 2 * res.log_likelihood)
        assert res.bic == pytest.approx(2 * np.log(n) - 2 * res.log_likelihood)


class TestSelectModel:
    def test_true_family_wins(self, lognormal_samples):
        ranked = select_model(lognormal_samples, criterion="aic")
        assert ranked[0].family == "lognormal"

    def test_ranking_is_sorted(self, lognormal_samples):
        ranked = select_model(lognormal_samples, criterion="bic")
        bics = [r.bic for r in ranked]
        assert bics == sorted(bics)

    def test_ks_criterion(self, lognormal_samples):
        ranked = select_model(lognormal_samples, criterion="ks")
        stats = [r.ks_statistic for r in ranked]
        assert stats == sorted(stats)

    def test_invalid_criterion(self, lognormal_samples):
        with pytest.raises(ValueError, match="criterion"):
            select_model(lognormal_samples, criterion="nope")

    def test_unknown_family_raises(self, lognormal_samples):
        with pytest.raises(ValueError, match="unknown family"):
            select_model(lognormal_samples, families=["lognormal", "zeta"])

    def test_subset_of_families(self, lognormal_samples):
        ranked = select_model(lognormal_samples, families=["weibull", "gamma"])
        assert {r.family for r in ranked} <= {"weibull", "gamma"}


class TestTruncatedMoments:
    def test_exponential_truncated_mean_closed_form(self):
        lam, u = 0.01, 300.0
        d = Exponential(rate=lam)
        expected = 1 / lam - u * np.exp(-lam * u) / (1 - np.exp(-lam * u))
        assert truncated_moment(d, 1, u) == pytest.approx(expected, rel=1e-5)

    def test_truncation_reduces_mean(self):
        d = LogNormal(mu=6.0, sigma=1.0)
        m_narrow, _ = truncated_mean_std(d, 500.0)
        m_wide, _ = truncated_mean_std(d, 50_000.0)
        assert m_narrow < m_wide <= d.mean() + 1.0

    def test_wide_truncation_approaches_full_moments(self):
        d = LogNormal(mu=5.0, sigma=0.5)
        mean, std = truncated_mean_std(d, 1e5, n_points=400_001)
        assert mean == pytest.approx(d.mean(), rel=1e-3)
        assert std == pytest.approx(d.std(), rel=1e-2)

    def test_validation(self):
        d = Exponential(rate=1.0)
        with pytest.raises(ValueError, match="order"):
            truncated_moment(d, 0, 10.0)
        with pytest.raises(ValueError, match="upper"):
            truncated_moment(d, 1, -1.0)
