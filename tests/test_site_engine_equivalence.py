"""The vectorised site engine against the event-driven oracle.

The contract of :class:`~repro.gridsim.site.VectorComputingElement`: the
background lane realises the *same queueing process* as the event kernel
— identical (arrival, runtime) sequences, FIFO service over the same
core pool — and client-visible traces are **bit-identical** wherever no
tie-order or kill-draw-order ambiguity is interposed.  This suite runs a
scenario matrix (idle, busy, saturated, outage-during-queue,
mass-cancellation) through both engines with the same seeds and compares
arrival counts, utilisation, wait-time distributions and post-snapshot
fork behaviour, plus deterministic unit tests of the wake machinery.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.strategies import (
    DelayedResubmission,
    MultipleSubmission,
    SingleResubmission,
)
from repro.gridsim import (
    FaultModel,
    GridConfig,
    GridSimulator,
    Job,
    JobState,
    OutageProcess,
    ProbeExperiment,
    SiteConfig,
    Simulator,
    VectorComputingElement,
    run_strategy_on_grid,
)


def config(util: float = 0.85, **kw) -> GridConfig:
    defaults = dict(
        sites=(
            SiteConfig("a", 8, utilization=util, runtime_median=600.0),
            SiteConfig("b", 16, utilization=util, runtime_median=900.0),
            SiteConfig("c", 4, utilization=min(util + 0.05, 1.3), runtime_median=900.0),
        ),
        matchmaking_median=30.0,
        faults=FaultModel(p_lost=0.02, p_stuck=0.02),
    )
    defaults.update(kw)
    return GridConfig(**defaults)


def engine_pair(cfg: GridConfig, seed: int) -> tuple[GridSimulator, GridSimulator]:
    """The same grid on both engines (``cfg`` may carry either default)."""
    return (
        GridSimulator(dataclasses.replace(cfg, site_engine="vector"), seed=seed),
        GridSimulator(dataclasses.replace(cfg, site_engine="event"), seed=seed),
    )


def site_fingerprint(grid: GridSimulator) -> tuple:
    """Per-site observable state (engine-independent fields only)."""
    return (
        grid.now,
        tuple(s.queue_length for s in grid.sites),
        tuple(s.busy_cores for s in grid.sites),
        tuple(s.jobs_started for s in grid.sites),
        tuple(s.jobs_completed for s in grid.sites),
        tuple(bg.jobs_generated for bg in grid.background),
    )


class TestBackgroundLaneExactness:
    """Background-only flow: the Lindley lane must mirror the oracle exactly."""

    @pytest.mark.parametrize(
        "util", [0.3, 0.85, 1.15], ids=["idle", "busy", "saturated"]
    )
    def test_warmup_state_matches_oracle(self, util):
        gv, ge = engine_pair(config(util=util), seed=17)
        for g in (gv, ge):
            g.warm_up(24 * 3600.0)
        assert site_fingerprint(gv) == site_fingerprint(ge)

    def test_saturated_queue_grows_identically(self):
        gv, ge = engine_pair(config(util=1.25), seed=5)
        checkpoints = []
        for g in (gv, ge):
            points = []
            for _ in range(6):
                g.run_until(g.now + 6 * 3600.0)
                points.append((g.total_queue_length(), g.total_busy_cores()))
            checkpoints.append(points)
        assert checkpoints[0] == checkpoints[1]
        assert checkpoints[0][-1][0] > checkpoints[0][0][0] > 0

    def test_diurnal_thinning_matches_oracle(self):
        cfg = config(util=0.8, diurnal_amplitude=0.4)
        gv, ge = engine_pair(cfg, seed=29)
        for g in (gv, ge):
            g.warm_up(36 * 3600.0)
        assert site_fingerprint(gv) == site_fingerprint(ge)


class TestClientTraceExactness:
    """Client-visible traces must be bit-identical between engines."""

    def test_probe_traces_bit_identical(self):
        gv, ge = engine_pair(config(), seed=23)
        traces = []
        for g in (gv, ge):
            g.warm_up(3600.0)
            traces.append(ProbeExperiment(g, n_slots=8, timeout=4000.0).run(40_000.0))
        tv, te = traces
        assert len(tv) > 100
        np.testing.assert_array_equal(tv.submit_times, te.submit_times)
        np.testing.assert_array_equal(tv.latencies, te.latencies)
        np.testing.assert_array_equal(tv.status_codes, te.status_codes)

    @pytest.mark.parametrize(
        "strategy",
        [
            SingleResubmission(t_inf=1500.0),
            MultipleSubmission(b=4, t_inf=2000.0),
            DelayedResubmission(t0=1200.0, t_inf=2000.0),
        ],
        ids=["single", "multiple", "delayed"],
    )
    def test_strategy_outcomes_bit_identical(self, strategy):
        """Mass cancellation: every burst round cancels b-1 copies."""
        outs = []
        for g in engine_pair(config(), seed=19):
            g.warm_up(3600.0)
            outs.append(
                run_strategy_on_grid(g, strategy, 40, task_interval=200.0, runtime=60.0)
            )
        a, b = outs
        np.testing.assert_array_equal(a.j, b.j)
        np.testing.assert_array_equal(a.jobs_submitted, b.jobs_submitted)
        assert a.gave_up == b.gave_up

    def test_mass_cancellation_leaves_identical_state(self):
        """Cancel a whole wave of queued/running client jobs mid-flight."""
        grids = engine_pair(config(util=1.1), seed=31)
        states = []
        for g in grids:
            g.warm_up(6 * 3600.0)
            jobs = [Job(runtime=300.0, tag="wave") for _ in range(60)]
            for k, job in enumerate(jobs):
                g.sim.schedule_at(g.now + 20.0 * k, lambda j=job: g.submit(j))
            g.run_until(g.now + 2000.0)
            for job in jobs:
                g.cancel(job)
            g.run_until(g.now + 20_000.0)
            states.append(
                (site_fingerprint(g), tuple(sorted(j.state.value for j in jobs)))
            )
        assert states[0] == states[1]


class TestOutageEquivalence:
    def attach_outages(self, grid: GridSimulator, kill: float) -> list[OutageProcess]:
        procs = []
        for k, site in enumerate(grid.sites):
            proc = OutageProcess(
                site,
                grid.sim,
                np.random.default_rng(400 + k),
                mean_uptime=20_000.0,
                mean_downtime=8_000.0,
                kill_running=kill,
            )
            proc.start()
            procs.append(proc)
        return procs

    def test_outage_during_queue_bit_identical_without_kills(self):
        """kill_running=0 keeps the RNG streams aligned: exact equality."""
        traces, fps = [], []
        for g in engine_pair(config(), seed=37):
            self.attach_outages(g, kill=0.0)
            g.warm_up(3600.0)
            traces.append(ProbeExperiment(g, n_slots=6, timeout=5000.0).run(60_000.0))
            fps.append(site_fingerprint(g))
        tv, te = traces
        np.testing.assert_array_equal(tv.submit_times, te.submit_times)
        np.testing.assert_array_equal(tv.latencies, te.latencies)
        assert fps[0] == fps[1]

    def test_outage_with_kills_is_law_identical(self):
        """Kill draws hit running jobs in a different order (same count,
        i.i.d.), so realisations may diverge — the laws must not."""
        stats = []
        for g in engine_pair(config(), seed=41):
            procs = self.attach_outages(g, kill=0.7)
            g.warm_up(3600.0)
            trace = ProbeExperiment(g, n_slots=6, timeout=5000.0).run(80_000.0)
            assert sum(p.outages_started for p in procs) >= 3
            ok = trace.successful_latencies
            stats.append(
                (
                    len(trace),
                    trace.outlier_ratio,
                    float(np.mean(ok)),
                    tuple(np.quantile(ok, [0.25, 0.5, 0.9])),
                    tuple(bg.jobs_generated for bg in g.background),
                )
            )
        a, b = stats
        assert a[4] == b[4]  # arrival counts are draw-for-draw identical
        assert a[0] == pytest.approx(b[0], rel=0.15)  # probe throughput
        assert a[1] == pytest.approx(b[1], abs=0.05)  # outlier ratio
        assert a[2] == pytest.approx(b[2], rel=0.35)  # mean wait
        for qa, qb in zip(a[3], b[3]):  # wait-time quantiles
            assert qa == pytest.approx(qb, rel=0.5, abs=60.0)

    def test_outage_stalls_and_recovery_drains_vector_site(self):
        """Direct port of the oracle's outage unit tests to the vector lane."""
        sim = Simulator()
        site = VectorComputingElement("ce", n_cores=4, sim=sim)
        rng = np.random.default_rng(0)
        proc = OutageProcess(
            site, sim, rng, mean_uptime=100.0, mean_downtime=4000.0, kill_running=0.0
        )
        proc.start()
        sim.run_until(2000.0)
        assert proc.is_down
        job = Job(runtime=10.0)
        site.enqueue(job)
        sim.run_until(2500.0)
        assert job.state is JobState.QUEUED  # gate closed: never started
        sim.run_until(50_000.0)
        assert job.state is JobState.COMPLETED
        # jobs queued through an outage start at the recovery instant
        assert job.start_time > job.queue_time

    def test_kill_running_on_vector_site(self):
        sim = Simulator()
        site = VectorComputingElement("ce", n_cores=4, sim=sim)
        jobs = [Job(runtime=1e8) for _ in range(4)]
        for j in jobs:
            site.enqueue(j)
        proc = OutageProcess(
            site,
            sim,
            np.random.default_rng(2),
            mean_uptime=10.0,
            mean_downtime=1e9,
            kill_running=1.0,
        )
        proc.start()
        sim.run_until(10_000.0)
        assert proc.is_down
        assert all(j.state is JobState.CANCELLED for j in jobs)
        assert site.busy_cores == 0  # cores idle but gated


class TestSnapshotForkEquivalence:
    def test_vector_fork_continues_like_independent_warmup(self):
        cfg = config()
        master = GridSimulator(cfg, seed=43)
        master.warm_up(7200.0)
        fork = master.clone()
        independent = GridSimulator(cfg, seed=43)
        independent.warm_up(7200.0)
        for g in (fork, independent):
            g.run_until(g.now + 50_000.0)
        assert site_fingerprint(fork) == site_fingerprint(independent)

    def test_fork_probe_traces_identical_across_engines(self):
        """Fork each engine's warmed grid; the probes must still agree."""
        traces = []
        for g in engine_pair(config(), seed=47):
            g.warm_up(7200.0)
            fork = g.clone()
            traces.append(
                ProbeExperiment(fork, n_slots=6, timeout=4000.0).run(30_000.0)
            )
        tv, te = traces
        np.testing.assert_array_equal(tv.latencies, te.latencies)

    def test_forks_are_mutually_independent(self):
        master = GridSimulator(config(), seed=53)
        master.warm_up(3600.0)
        snap = master.snapshot()
        a, b = snap.restore(), snap.restore()
        fp_b = site_fingerprint(b)
        a.run_until(a.now + 20_000.0)
        assert site_fingerprint(b) == fp_b
        b.run_until(b.now + 20_000.0)
        assert site_fingerprint(a) == site_fingerprint(b)


class TestVectorSiteKernel:
    """Deterministic wake/lane mechanics via hand-fed background arrays."""

    def make(self, n_cores=1):
        sim = Simulator()
        started: list[tuple[float, Job]] = []
        site = VectorComputingElement(
            "v", n_cores, sim, on_start=lambda j: started.append((sim.now, j))
        )
        return sim, site, started

    def test_immediate_start_on_free_core(self):
        sim, site, started = self.make()
        job = Job(runtime=5.0)
        site.enqueue(job)
        assert job.state is JobState.RUNNING
        assert started == [(0.0, job)]
        sim.run_until(10.0)
        assert job.state is JobState.COMPLETED
        assert site.jobs_completed == 1

    def test_client_starts_exactly_when_background_completes(self):
        sim, site, started = self.make()
        site.feed_background([1.0], [10.0])
        sim.run_until(3.0)
        job = Job(runtime=2.0)
        site.enqueue(job)
        assert job.state is JobState.QUEUED
        assert site.queue_length == 1
        sim.run_until(30.0)
        # the background job ran [1, 11); the client starts at exactly 11
        assert started == [(11.0, job)]
        assert job.start_time == 11.0
        assert job.end_time == 13.0

    def test_fifo_order_between_lanes(self):
        sim, site, started = self.make()
        # background arrives at t=1 and t=4, client enqueues at t=2: the
        # t=4 arrival is *behind* the client in the FIFO
        site.feed_background([1.0, 4.0], [10.0, 10.0])
        sim.run_until(2.0)
        job = Job(runtime=1.0)
        site.enqueue(job)
        sim.run_until(40.0)
        assert job.start_time == 11.0  # after bg#1 [1,11), before bg#2 [12,22)
        assert site.jobs_started == 3
        assert site.jobs_completed == 3

    def test_cancel_queued_client_lets_background_keep_schedule(self):
        sim, site, started = self.make()
        site.feed_background([1.0, 2.0], [10.0, 10.0])
        sim.run_until(3.0)
        job = Job(runtime=50.0)
        site.enqueue(job)
        assert site.cancel(job) is True
        assert job.state is JobState.CANCELLED
        assert site.queue_length == 1  # the waiting bg arrival, husk discounted
        sim.run_until(25.0)
        assert site.jobs_started == 2
        assert started == []

    def test_cancel_running_client_frees_core_for_queue(self):
        sim, site, started = self.make()
        hog = Job(runtime=1000.0)
        site.enqueue(hog)
        site.feed_background([5.0], [10.0])
        sim.run_until(20.0)
        assert site.queue_length == 1  # bg waits behind the hog
        site.cancel(hog)
        # the freed core starts the waiting background job this instant
        assert site.busy_cores == 1
        sim.run_until(31.0)
        assert site.jobs_completed == 1
        assert site.busy_cores == 0

    def test_wake_retargets_when_earlier_slot_opens(self):
        sim, site, started = self.make(n_cores=2)
        a, b = Job(runtime=100.0), Job(runtime=200.0)
        site.enqueue(a)
        site.enqueue(b)
        waiting = Job(runtime=1.0)
        sim.run_until(10.0)
        site.enqueue(waiting)  # predicted start: 100.0 (a completes)
        sim.run_until(20.0)
        site.cancel(a)  # frees a core at t=20: waiting starts immediately
        assert waiting.state is JobState.RUNNING
        assert waiting.start_time == 20.0

    def test_telemetry_reconciles_lazily(self):
        sim, site, _ = self.make(n_cores=2)
        site.feed_background([1.0, 2.0, 3.0], [100.0, 100.0, 100.0])
        # no events processed beyond feeding; reading telemetry reconciles
        sim.run_until(50.0)
        assert site.busy_cores == 2
        assert site.queue_length == 1
        assert site.jobs_started == 2
        assert site.estimated_wait(100.0) == pytest.approx(50.0)

    def test_background_delivered_counts_arrivals_only(self):
        sim, site, _ = self.make(n_cores=1)
        site.feed_background([1.0, 2.0, 50.0], [10.0, 10.0, 10.0])
        sim.run_until(5.0)
        assert site.background_delivered() == 2
        sim.run_until(60.0)
        assert site.background_delivered() == 3

    def test_enqueue_rejects_bad_states(self):
        sim, site, _ = self.make()
        job = Job(runtime=1.0)
        job.state = JobState.RUNNING
        with pytest.raises(ValueError, match="cannot enqueue"):
            site.enqueue(job)

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            VectorComputingElement("v", n_cores=0, sim=sim)
