"""Tests for the high-level submission planner."""

import numpy as np
import pytest

from repro.core.strategies import MultipleSubmission, SingleResubmission
from repro.workflow import plan_submissions


class TestPlanSubmissions:
    def test_plan_from_gridded_model(self, gridded):
        plan = plan_submissions(gridded, max_parallel=5.0, t0_window=(100, 1500))
        assert plan.candidates
        names = [c.name for c in plan.candidates]
        assert "single" in names
        assert any(n.startswith("delayed") for n in names)

    def test_plan_from_trace(self, trace_2006):
        plan = plan_submissions(
            trace_2006, max_parallel=3.0, t0_window=(100, 1500)
        )
        assert plan.best.e_j > 0

    def test_objective_e_j_ranks_fastest_first(self, gridded):
        plan = plan_submissions(
            gridded, max_parallel=10.0, objective="e_j", t0_window=(100, 1500)
        )
        e_js = [c.e_j for c in plan.candidates]
        assert e_js == sorted(e_js)
        # with a generous budget, the largest burst wins on speed
        assert isinstance(plan.best.strategy, MultipleSubmission)

    def test_objective_cost_prefers_win_win(self, gridded):
        plan = plan_submissions(
            gridded, max_parallel=10.0, objective="cost", t0_window=(100, 1500)
        )
        costs = [c.cost for c in plan.candidates]
        assert costs == sorted(costs)
        assert plan.best.cost < 1.0  # the delayed win-win configuration

    def test_objective_sigma(self, gridded):
        plan = plan_submissions(
            gridded, max_parallel=10.0, objective="sigma", t0_window=(100, 1500)
        )
        sigmas = [c.sigma_j for c in plan.candidates]
        assert sigmas == sorted(sigmas)

    def test_budget_rejects_bursts(self, gridded):
        plan = plan_submissions(
            gridded, max_parallel=1.6, b_values=(2, 3), t0_window=(100, 1500)
        )
        names = [c.name for c in plan.candidates]
        assert all(not n.startswith("multiple") for n in names)
        assert plan.rejected
        reasons = [r for _, r in plan.rejected]
        assert all("budget" in r for r in reasons)

    def test_cost_ceiling(self, gridded):
        plan = plan_submissions(
            gridded,
            max_parallel=10.0,
            max_cost=1.0,
            t0_window=(100, 1500),
        )
        assert all(c.cost <= 1.0 + 1e-9 for c in plan.candidates)
        assert any("ceiling" in r for _, r in plan.rejected)

    def test_single_always_feasible_within_default_budget(self, gridded):
        plan = plan_submissions(gridded, max_parallel=1.0, t0_window=(100, 1500))
        # N_// = 1 exactly: single always survives a budget of 1
        assert any(isinstance(c.strategy, SingleResubmission)
                   for c in plan.candidates)

    def test_deadline_quantile_reported(self, gridded):
        plan = plan_submissions(
            gridded,
            max_parallel=10.0,
            deadline_quantile=0.9,
            objective="deadline",
            t0_window=(100, 1500),
        )
        deadlines = [c.deadline for c in plan.candidates]
        assert all(np.isfinite(d) for d in deadlines)
        assert deadlines == sorted(deadlines)
        # the 90th percentile exceeds the mean for these heavy tails
        assert plan.best.deadline > 0

    def test_best_raises_when_nothing_feasible(self, gridded):
        plan = plan_submissions(
            gridded,
            max_parallel=1.0,
            max_cost=0.1,  # unattainable
            t0_window=(100, 1500),
        )
        with pytest.raises(ValueError, match="no strategy satisfies"):
            _ = plan.best

    def test_render_lists_feasible_and_rejected(self, gridded):
        plan = plan_submissions(
            gridded, max_parallel=1.6, b_values=(3,), t0_window=(100, 1500)
        )
        text = plan.render()
        assert "rejected" in text
        assert "delayed" in text

    def test_validation(self, gridded):
        with pytest.raises(ValueError, match="objective"):
            plan_submissions(gridded, objective="speed")
        with pytest.raises(ValueError, match="deadline_quantile"):
            plan_submissions(gridded, objective="deadline")
        with pytest.raises(ValueError, match="max_parallel"):
            plan_submissions(gridded, max_parallel=0.5)
        with pytest.raises(ValueError):
            plan_submissions(gridded, deadline_quantile=1.5)
