"""Monte-Carlo replay vs analytic moments — the end-to-end math check."""

import numpy as np
import pytest

from repro.core.strategies import (
    delayed_moments,
    multiple_moments,
    single_moments,
)
from repro.core.strategies.delayed import mean_parallel_exact
from repro.montecarlo import (
    agreement_zscore,
    mc_summary,
    simulate_delayed,
    simulate_multiple,
    simulate_single,
)

N = 30_000  # tasks per replay; stderr ~ sigma/173


class TestSimulateSingle:
    def test_agrees_with_eq1(self, lognormal_model, gridded):
        run = simulate_single(lognormal_model, 600.0, N, rng=1)
        mom = single_moments(gridded, 600.0)
        assert agreement_zscore(mom.expectation, run.j) < 4.0

    def test_agrees_with_eq2(self, lognormal_model, gridded):
        run = simulate_single(lognormal_model, 600.0, N, rng=2)
        mom = single_moments(gridded, 600.0)
        assert run.std_j == pytest.approx(mom.std, rel=0.05)

    def test_job_count_is_geometric(self, lognormal_model, gridded):
        t_inf = 600.0
        run = simulate_single(lognormal_model, t_inf, N, rng=3)
        p = gridded.F_at(t_inf)
        assert run.mean_jobs == pytest.approx(1.0 / p, rel=0.05)

    def test_n_parallel_is_one(self, lognormal_model):
        run = simulate_single(lognormal_model, 600.0, 100, rng=4)
        assert (run.n_parallel == 1.0).all()

    def test_all_j_below_bound(self, lognormal_model):
        # every task ends with a success: J = (k-1)·t_inf + R, R < t_inf
        run = simulate_single(lognormal_model, 600.0, 1000, rng=5)
        assert (run.j % 600.0 < 600.0).all()
        assert (run.j >= 0).all()

    def test_validation(self, lognormal_model):
        with pytest.raises(ValueError):
            simulate_single(lognormal_model, -1.0, 10)
        with pytest.raises(ValueError):
            simulate_single(lognormal_model, 100.0, 0)

    def test_unreachable_timeout_raises(self, lognormal_model):
        # the model has a 100 s floor: t_inf below it never succeeds
        with pytest.raises(RuntimeError, match="did not converge"):
            simulate_single(lognormal_model, 50.0, 10, rng=0)


class TestSimulateMultiple:
    @pytest.mark.parametrize("b", (2, 5))
    def test_agrees_with_eq3(self, lognormal_model, gridded, b):
        run = simulate_multiple(lognormal_model, b, 800.0, N, rng=b)
        mom = multiple_moments(gridded, b, 800.0)
        assert agreement_zscore(mom.expectation, run.j) < 4.0

    def test_agrees_with_eq4(self, lognormal_model, gridded):
        run = simulate_multiple(lognormal_model, 3, 800.0, N, rng=7)
        mom = multiple_moments(gridded, 3, 800.0)
        assert run.std_j == pytest.approx(mom.std, rel=0.05)

    def test_jobs_counted_in_batches(self, lognormal_model):
        run = simulate_multiple(lognormal_model, 4, 800.0, 1000, rng=8)
        assert (run.jobs_submitted % 4 == 0).all()

    def test_b1_matches_single(self, lognormal_model):
        rs = simulate_single(lognormal_model, 700.0, N, rng=9)
        rm = simulate_multiple(lognormal_model, 1, 700.0, N, rng=9)
        # same seed, same draw pattern -> identical replay
        np.testing.assert_allclose(rs.j, rm.j)

    def test_validation(self, lognormal_model):
        with pytest.raises(ValueError):
            simulate_multiple(lognormal_model, 0, 100.0, 10)


class TestSimulateDelayed:
    def test_agrees_with_closed_form(self, lognormal_model, gridded):
        run = simulate_delayed(lognormal_model, 400.0, 600.0, N, rng=10)
        mom = delayed_moments(gridded, 400.0, 600.0)
        assert agreement_zscore(mom.expectation, run.j) < 4.0
        assert run.std_j == pytest.approx(mom.std, rel=0.05)

    def test_exact_n_parallel_agrees(self, lognormal_model, gridded):
        run = simulate_delayed(lognormal_model, 400.0, 600.0, N, rng=11)
        exact = mean_parallel_exact(gridded, 400.0, 600.0)
        assert run.mean_parallel == pytest.approx(exact, abs=0.01)

    def test_degenerate_ratio_one_matches_single(self, lognormal_model, gridded):
        run = simulate_delayed(lognormal_model, 500.0, 500.0, N, rng=12)
        mom = single_moments(gridded, 500.0)
        assert agreement_zscore(mom.expectation, run.j) < 4.0

    def test_job_count_lower_than_single(self, lognormal_model):
        # delayed keeps fewer copies than resubmitting at t0 would
        run = simulate_delayed(lognormal_model, 400.0, 700.0, 5000, rng=13)
        assert run.mean_jobs < 4.0
        assert (run.jobs_submitted >= 1).all()

    def test_validation(self, lognormal_model):
        with pytest.raises(ValueError, match="2"):
            simulate_delayed(lognormal_model, 400.0, 900.0, 10)
        with pytest.raises(ValueError):
            simulate_delayed(lognormal_model, 400.0, 600.0, 0)


class TestCompareHelpers:
    def test_mc_summary_fields(self, rng):
        s = mc_summary(rng.normal(10.0, 2.0, size=10_000))
        assert s.mean == pytest.approx(10.0, abs=0.1)
        assert s.std == pytest.approx(2.0, abs=0.1)
        assert s.n == 10_000
        lo, hi = s.ci(3.0)
        assert lo < 10.0 < hi
        assert s.contains(10.0)

    def test_mc_summary_validation(self):
        with pytest.raises(ValueError):
            mc_summary(np.array([1.0]))
        with pytest.raises(ValueError):
            mc_summary(np.array([1.0, np.inf]))

    def test_agreement_zscore_zero_spread(self):
        assert agreement_zscore(5.0, np.full(100, 5.0)) == 0.0
        assert agreement_zscore(6.0, np.full(100, 5.0)) == np.inf
