"""End-to-end task tracing: registry, span completeness, decomposition.

Four layers under test.  **Registry**: counters, fixed-bucket
histograms and lazy gauges behave as documented (get-or-create sharing,
strict edge validation, picklable gauge sources only).  **Spans**: on
every site×WMS engine corner, under a calm grid and all three chaos
standard schedules, every ledgered task's events telescope — launch ≤
submit ≤ enqueue ≤ start ≤ complete along the winning job — and the
latency decomposition sums exactly to the makespan the campaign
reported.  **Round-trips**: JSONL traces read back event-for-event and
the GWF export parses through the same ``read_gwf_workload`` loader the
replay bridge uses.  **Laws**: tracing is opt-in and invisible — a
traced run reproduces the untraced campaign bit-for-bit.
"""

from __future__ import annotations

import dataclasses
import io
import math

import numpy as np
import pytest

from repro.core.strategies import SingleResubmission
from repro.gridsim import (
    Counter,
    GridConfig,
    GridMonitor,
    GridSimulator,
    Histogram,
    MetricsRegistry,
    SiteConfig,
    TraceRecorder,
    breakdown_tables,
    chaos_grid_config,
    decompose,
    export_gwf,
    read_trace,
    run_chaos,
    standard_schedules,
    write_trace,
)
from repro.gridsim.chaos import _CORNERS
from repro.gridsim.client import launch_task
from repro.traces.gwf import read_gwf_workload

_N_TASKS = 12
_HORIZON = 8 * 3600.0


def _traced_run(cfg, site_engine="vector", wms_engine="batched"):
    run_cfg = dataclasses.replace(
        cfg, tracing=True, site_engine=site_engine, wms_engine=wms_engine
    )
    return run_chaos(run_cfg, seed=11, n_tasks=_N_TASKS, horizon=_HORIZON)


def _campaigns():
    """Calm + the three chaos standard schedules on one small grid."""
    base = chaos_grid_config(seed=7)
    return [("calm", base)] + standard_schedules(base)


@pytest.fixture(scope="module")
def storm_result():
    """One traced storm campaign shared by the round-trip tests."""
    base = chaos_grid_config(seed=7)
    cfg = dict(standard_schedules(base))["storm-broker-site"]
    return _traced_run(cfg)


# -- registry ---------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_is_get_or_create(self):
        reg = MetricsRegistry()
        c = reg.counter("a.b")
        assert reg.counter("a.b") is c
        c.inc()
        c.inc(3)
        assert reg.value("a.b") == 4
        assert "a.b" in reg

    def test_histogram_buckets_and_mean(self):
        h = Histogram("lat", (10.0, 100.0))
        h.observe_many([5.0, 50.0, 500.0, 7.0])
        assert h.counts == [2, 1, 1]
        assert h.total == 4
        assert h.mean == pytest.approx(140.5)
        d = h.as_dict()
        assert d["edges"] == [10.0, 100.0] and d["counts"] == [2, 1, 1]

    def test_histogram_rejects_bad_edges(self):
        with pytest.raises(ValueError, match="at least one"):
            Histogram("x", ())
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("x", (1.0, 1.0))

    def test_empty_histogram_mean_is_zero(self):
        assert Histogram("x", (1.0,)).mean == 0.0

    def test_gauges_attr_and_callable(self):
        reg = MetricsRegistry()
        c = Counter("raw")
        reg.register_gauge("g.attr", c, "value")
        h = Histogram("h", (1.0,))
        reg.register_gauge("g.bound", h.as_dict)
        c.inc(2)
        assert reg.value("g.attr") == 2
        assert reg.value("g.bound")["total"] == 0

    def test_gauge_rejects_non_callable_without_attr(self):
        reg = MetricsRegistry()
        with pytest.raises(TypeError, match="callable"):
            reg.register_gauge("bad", object())

    def test_value_raises_on_unknown_name(self):
        with pytest.raises(KeyError, match="nope"):
            MetricsRegistry().value("nope")

    def test_snapshot_and_names_are_sorted(self):
        reg = MetricsRegistry()
        reg.counter("z").inc()
        reg.counter("a").inc(2)
        reg.histogram("m", (1.0,)).observe(0.5)
        assert reg.names() == ["a", "m", "z"]
        snap = reg.snapshot()
        assert list(snap) == ["a", "m", "z"]
        assert snap["a"] == 2 and snap["m"]["total"] == 1


# -- span completeness across the engine matrix -----------------------------


@pytest.mark.parametrize(
    "site_engine,wms_engine", _CORNERS, ids=lambda e: str(e)
)
class TestSpanCompleteness:
    def test_spans_telescope_on_every_campaign(self, site_engine, wms_engine):
        for name, cfg in _campaigns():
            res = _traced_run(cfg, site_engine, wms_engine)
            assert res.ok, f"{name}: conservation audit failed"
            self._check_spans(name, res)

    @staticmethod
    def _check_spans(name, res):
        by_kind: dict[str, list] = {}
        for ev in res.events:
            by_kind.setdefault(ev[0], []).append(ev)
        task_ids = [tid for _, _, tid, _, _ in by_kind.get("task", [])]
        assert task_ids == list(range(_N_TASKS)), name
        completes = by_kind.get("complete", [])
        assert len(completes) == res.finished, name
        assert len(by_kind.get("expire", [])) == res.gave_up, name

        t_launch = {tid: t for _, t, tid, _, _ in by_kind["task"]}
        per_job: dict[int, dict] = {}
        for kind in ("submit", "hop", "enqueue", "start"):
            for _, t, _, jid, _ in by_kind.get(kind, []):
                per_job.setdefault(jid, {})[kind] = t  # last write wins
        for _, t_done, tid, winner, _ in completes:
            span = per_job.get(winner)
            assert span is not None, f"{name}: winner {winner} never submitted"
            for stage in ("submit", "hop", "enqueue", "start"):
                assert stage in span, f"{name}: winner {winner} missing {stage}"
            assert (
                t_launch[tid]
                <= span["submit"]
                <= span["enqueue"]
                <= span["start"]
                <= t_done
            ), f"{name}: task {tid} span does not telescope"

    def test_decomposition_sums_to_makespan(self, site_engine, wms_engine):
        for name, cfg in _campaigns():
            res = _traced_run(cfg, site_engine, wms_engine)
            records = decompose(res.events)
            assert len(records) == res.finished, name
            for r in records:
                assert r.retry_loss >= 0 and r.middleware >= 0, name
                assert r.queue_wait >= 0 and r.makespan >= 0, name
                assert math.isclose(
                    r.retry_loss + r.middleware + r.queue_wait,
                    r.makespan,
                    rel_tol=1e-12,
                    abs_tol=1e-9,
                ), f"{name}: task {r.task_id} decomposition does not sum"
                assert r.turnaround == pytest.approx(r.makespan + r.runtime)
            if records:
                mean_j = sum(r.makespan for r in records) / len(records)
                assert mean_j == pytest.approx(res.mean_latency), name


# -- broker hops ------------------------------------------------------------


class TestHopEvents:
    def test_hops_name_brokers_and_bound_staleness(self, storm_result):
        hops = [ev for ev in storm_result.events if ev[0] == "hop"]
        assert hops, "no hop events in a federated campaign"
        names = {aux[0] for _, _, _, _, aux in hops}
        assert names <= {"wms-0", "wms-1"}
        assert all(aux[1] >= 0.0 for _, _, _, _, aux in hops)


# -- serialisation round-trips ----------------------------------------------


class TestRoundTrips:
    def test_jsonl_round_trip_is_exact(self, storm_result):
        buf = io.StringIO()
        write_trace(storm_result.events, buf)
        buf.seek(0)
        assert read_trace(buf) == list(storm_result.events)

    def test_jsonl_file_round_trip(self, storm_result, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace(storm_result.events, path)
        assert read_trace(path) == list(storm_result.events)

    def test_read_trace_skips_comments_and_blanks(self):
        buf = io.StringIO('# header\n\n{"kind": "expire", "t": 1.0, "task": 0, "job": -1}\n')
        assert read_trace(buf) == [("expire", 1.0, 0, -1, None)]

    def test_gwf_export_parses_through_workload_loader(
        self, storm_result, tmp_path
    ):
        path = tmp_path / "trace.gwf"
        n = export_gwf(storm_result.events, path)
        assert n == storm_result.finished > 0
        arrivals, runtimes = read_gwf_workload(path)
        # all rows survive the loader's non-positive-runtime filter
        assert arrivals.size == runtimes.size == n
        assert arrivals[0] == 0.0  # rebased
        assert np.all(np.diff(arrivals) >= 0)
        assert np.all(runtimes > 0)

    def test_breakdown_tables_render(self, storm_result):
        by_strategy, by_vo = breakdown_tables(decompose(storm_result.events))
        text = by_strategy.render()
        for label in ("single", "multiple", "delayed"):
            assert label in text
        assert "(none)" in by_vo.render()


# -- tracing is opt-in and invisible ----------------------------------------


class TestZeroCost:
    def test_traced_run_reproduces_untraced_campaign(self):
        base = chaos_grid_config(seed=7)
        cfg = dict(standard_schedules(base))["storm-broker-site"]
        # same config either side (engine selection included), only the
        # tracing flag differs
        off = run_chaos(cfg, seed=11, n_tasks=_N_TASKS, horizon=_HORIZON)
        on = run_chaos(
            dataclasses.replace(cfg, tracing=True),
            seed=11,
            n_tasks=_N_TASKS,
            horizon=_HORIZON,
        )
        assert off.events == ()
        assert len(on.events) > 0
        assert on.finished == off.finished
        assert on.gave_up == off.gave_up
        assert on.mean_latency == off.mean_latency
        assert on.weather == off.weather

    def test_recorder_absent_unless_configured(self):
        cfg = GridConfig(sites=(SiteConfig("a", 4),))
        assert GridSimulator(cfg, seed=1).trace is None
        traced = GridSimulator(
            dataclasses.replace(cfg, tracing=True), seed=1
        )
        assert isinstance(traced.trace, TraceRecorder)
        assert traced.trace is traced._tr

    def test_latency_histogram_fills_on_completion(self):
        cfg = GridConfig(
            sites=(SiteConfig("a", 8, utilization=0.3),), tracing=True
        )
        grid = GridSimulator(cfg, seed=3)
        grid.warm_up(3600.0)
        results: list = []
        for _ in range(3):
            launch_task(
                grid, SingleResubmission(t_inf=1800.0), 300.0, results
            )
        grid.run_until(grid.now + 6 * 3600.0)
        hist = grid.metrics.value("trace.task_latency")
        assert hist["total"] == len(results) == 3
        assert hist["sum"] == pytest.approx(sum(r[0] for r in results))


# -- monitor regression (zero samples) --------------------------------------


class TestMonitorZeroSamples:
    def test_len_and_times_on_fresh_monitor(self):
        grid = GridSimulator(GridConfig(sites=(SiteConfig("a", 4),)), seed=1)
        mon = GridMonitor(grid)
        assert len(mon) == 0
        times = mon.times()
        assert isinstance(times, np.ndarray)
        assert times.size == 0
