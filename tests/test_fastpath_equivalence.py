"""Equivalence tests for the batched fast paths introduced with the
surface kernel: the 2-D delayed-E_J kernel against the per-``t0``
reference, and the closed-form Monte-Carlo draws against the original
loop-based mechanical replays (kept here verbatim as references)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.model import LatencyModel
from repro.core.optimize import _best_over_t0, optimize_delayed
from repro.core.strategies.delayed import (
    _DELAYED_CACHE_BUDGET,
    delayed_expectation_bands,
    delayed_expectation_for_t0,
    delayed_expectation_surface,
)
from repro.distributions import LogNormal, ShiftedDistribution, Weibull
from repro.montecarlo import simulate_multiple, simulate_single
from repro.util.grids import TimeGrid

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

model_params = st.tuples(
    st.floats(min_value=4.5, max_value=6.5),   # lognormal mu
    st.floats(min_value=0.4, max_value=1.6),   # lognormal sigma
    st.floats(min_value=0.0, max_value=0.4),   # rho
    st.floats(min_value=0.0, max_value=300.0), # shift
)


def make_gridded(params, t_max=6000.0, dt=4.0):
    mu, sigma, rho, shift = params
    dist = ShiftedDistribution(LogNormal(mu=mu, sigma=sigma), shift=shift)
    return LatencyModel(dist, rho=rho).on_grid(TimeGrid(t_max=t_max, dt=dt))


# -- reference implementations: the original loop-based MC replays --------

_MAX_ROUNDS = 100_000


def _loop_simulate_single(model, t_inf, n_tasks, rng):
    """Seed implementation of simulate_single (mechanical replay)."""
    gen = np.random.default_rng(rng)
    j = np.zeros(n_tasks)
    jobs = np.zeros(n_tasks, dtype=np.int64)
    alive = np.arange(n_tasks)
    for _ in range(_MAX_ROUNDS):
        if alive.size == 0:
            break
        lat = model.sample_latencies(alive.size, gen)
        jobs[alive] += 1
        success = lat < t_inf
        done = alive[success]
        j[done] += lat[success]
        failed = alive[~success]
        j[failed] += t_inf
        alive = failed
    return j, jobs


def _loop_simulate_multiple(model, b, t_inf, n_tasks, rng):
    """Seed implementation of simulate_multiple (mechanical replay)."""
    gen = np.random.default_rng(rng)
    j = np.zeros(n_tasks)
    jobs = np.zeros(n_tasks, dtype=np.int64)
    alive = np.arange(n_tasks)
    for _ in range(_MAX_ROUNDS):
        if alive.size == 0:
            break
        lat = model.sample_latencies(alive.size * b, gen).reshape(alive.size, b)
        jobs[alive] += b
        best = lat.min(axis=1)
        success = best < t_inf
        done = alive[success]
        j[done] += best[success]
        failed = alive[~success]
        j[failed] += t_inf
        alive = failed
    return j, jobs


class TestSurfaceKernel:
    @SETTINGS
    @given(params=model_params)
    def test_surface_rows_match_reference(self, params):
        gm = make_gridded(params)
        n = gm.grid.n
        k0s = [2, 3, 7, n // 8, n // 3, n // 2, 2 * n // 3, n - 1]
        surface = delayed_expectation_surface(gm, k0s)
        for row, k0 in zip(surface, k0s):
            ref = delayed_expectation_for_t0(gm, k0)
            np.testing.assert_allclose(row, ref, atol=1e-9)

    @SETTINGS
    @given(params=model_params)
    def test_bands_match_surface(self, params):
        gm = make_gridded(params)
        n = gm.grid.n
        k0s = np.array([5, n // 4, n // 2, n - 2])
        rect, widths = delayed_expectation_bands(gm, k0s)
        surface = delayed_expectation_surface(gm, k0s)
        for i, k0 in enumerate(k0s):
            w = int(widths[i])
            assert w == min(2 * k0, n - 1) - k0 + 1
            np.testing.assert_array_equal(rect[i, :w], surface[i, k0 : k0 + w])
            assert np.isinf(rect[i, w:]).all()

    def test_rows_are_cached_and_reused(self):
        gm = make_gridded((5.6, 1.1, 0.05, 150.0))
        first = delayed_expectation_surface(gm, [50, 80])
        assert set(gm._delayed_band_cache) >= {50, 80}
        row_obj = gm._delayed_band_cache[50]
        second = delayed_expectation_surface(gm, [50])
        assert gm._delayed_band_cache[50] is row_obj  # no recomputation
        np.testing.assert_array_equal(first[0], second[0])

    def test_cache_budget_is_bounded(self):
        gm = make_gridded((5.6, 1.1, 0.05, 150.0), t_max=6000.0, dt=1.0)
        delayed_expectation_surface(gm, list(range(2, gm.grid.n - 1, 3)))
        assert gm._delayed_band_cache_floats <= _DELAYED_CACHE_BUDGET
        assert sum(
            row.size for row in gm._delayed_band_cache.values()
        ) == gm._delayed_band_cache_floats

    def test_optimizer_matches_exhaustive_reference(self):
        gm = make_gridded((5.6, 1.1, 0.05, 150.0))
        opt = optimize_delayed(gm, coarse=1)
        best = (np.inf, None, None)
        for k0 in range(2, gm.grid.n - 1):
            ref = delayed_expectation_for_t0(gm, k0)
            hi = min(2 * k0, gm.grid.n - 1)
            ks = np.arange(k0, hi + 1)
            j = int(np.argmin(ref[ks]))
            if ref[ks][j] < best[0]:
                best = (float(ref[ks][j]), k0, int(ks[j]))
        assert opt.e_j == pytest.approx(best[0], rel=1e-12)
        assert gm.grid.index_of(opt.t0) == best[1]
        assert gm.grid.index_of(opt.t_inf) == best[2]


class TestBestOverT0Hardening:
    def test_all_nan_candidates_are_skipped(self):
        gm = make_gridded((5.6, 1.1, 0.05, 150.0))

        def objective(k0):
            ks = np.arange(k0, min(2 * k0, gm.grid.n - 1) + 1)
            if k0 < 100:
                return np.full(ks.size, np.nan), ks
            return np.asarray(delayed_expectation_for_t0(gm, k0)[ks]), ks

        k0, k_inf, value = _best_over_t0(gm, np.arange(50, 160, 10), objective)
        assert k0 >= 100
        assert np.isfinite(value)

    def test_everything_nan_raises_value_error(self):
        gm = make_gridded((5.6, 1.1, 0.05, 150.0))

        def objective(k0):
            ks = np.arange(k0, min(2 * k0, gm.grid.n - 1) + 1)
            return np.full(ks.size, np.nan), ks

        with pytest.raises(ValueError, match="no feasible"):
            _best_over_t0(gm, np.arange(50, 100, 10), objective)


class TestClosedFormMcLaw:
    """Closed-form draws vs the loop-based replays, at fixed seeds.

    The two samplers consume randomness differently, so agreement is
    statistical: means within a few combined standard errors, matching
    standard deviations and mean job counts.
    """

    N = 60_000

    @pytest.fixture(scope="class")
    def model(self):
        dist = ShiftedDistribution(LogNormal(mu=5.6, sigma=1.1), shift=150.0)
        return LatencyModel(dist, rho=0.05)

    def assert_law_agrees(self, j_ref, jobs_ref, run):
        se = np.hypot(
            j_ref.std(ddof=1) / np.sqrt(j_ref.size),
            run.j.std(ddof=1) / np.sqrt(run.j.size),
        )
        assert abs(j_ref.mean() - run.mean_j) < 5.0 * se
        assert run.std_j == pytest.approx(j_ref.std(), rel=0.05)
        assert run.mean_jobs == pytest.approx(jobs_ref.mean(), rel=0.05)

    def test_single_matches_loop_replay(self, model):
        j_ref, jobs_ref = _loop_simulate_single(model, 600.0, self.N, rng=11)
        run = simulate_single(model, 600.0, self.N, rng=12)
        self.assert_law_agrees(j_ref, jobs_ref, run)

    @pytest.mark.parametrize("b", (2, 5))
    def test_multiple_matches_loop_replay(self, model, b):
        j_ref, jobs_ref = _loop_simulate_multiple(model, b, 800.0, self.N, rng=b)
        run = simulate_multiple(model, b, 800.0, self.N, rng=b + 50)
        self.assert_law_agrees(j_ref, jobs_ref, run)

    def test_multiple_with_weibull_body(self):
        dist = ShiftedDistribution(Weibull(shape=1.3, scale=500.0), shift=80.0)
        model = LatencyModel(dist, rho=0.2)
        j_ref, jobs_ref = _loop_simulate_multiple(model, 3, 900.0, self.N, rng=7)
        run = simulate_multiple(model, 3, 900.0, self.N, rng=77)
        self.assert_law_agrees(j_ref, jobs_ref, run)

    def test_deterministic_at_fixed_seed(self, model):
        a = simulate_single(model, 600.0, 1000, rng=5)
        b = simulate_single(model, 600.0, 1000, rng=5)
        np.testing.assert_array_equal(a.j, b.j)
        np.testing.assert_array_equal(a.jobs_submitted, b.jobs_submitted)
