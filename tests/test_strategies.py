"""Tests for the three strategy models (Eqs. 1–5, §6.1)."""

import numpy as np
import pytest

from repro.core.strategies import (
    DelayedResubmission,
    MultipleSubmission,
    SingleResubmission,
    delayed_expectation_for_t0,
    delayed_moments,
    delayed_survival,
    multiple_expectation_sweep,
    multiple_moments,
    multiple_std_sweep,
    n_parallel_for_latency,
    single_expectation_sweep,
    single_moments,
    single_std_sweep,
)
from repro.core.strategies.delayed import mean_parallel_exact


class TestSingleResubmission:
    def test_expectation_without_timeout_pressure(self, gridded_faultless):
        # with a huge timeout and no faults, E_J -> E[R]
        mom = single_moments(gridded_faultless, 8000.0)
        true_mean = gridded_faultless.model.distribution.mean()
        assert mom.expectation == pytest.approx(true_mean, rel=0.02)

    def test_expectation_sweep_matches_pointwise(self, gridded):
        sweep = single_expectation_sweep(gridded)
        for t in (300.0, 600.0, 1200.0):
            k = gridded.index_of(t)
            assert sweep[k] == pytest.approx(
                single_moments(gridded, t).expectation, rel=1e-9
            )

    def test_std_sweep_matches_pointwise(self, gridded):
        sweep = single_std_sweep(gridded)
        for t in (300.0, 600.0, 1200.0):
            k = gridded.index_of(t)
            assert sweep[k] == pytest.approx(single_moments(gridded, t).std, rel=1e-9)

    def test_infinite_below_support(self, gridded):
        # the model has a 100 s floor: timeouts below it never succeed
        sweep = single_expectation_sweep(gridded)
        assert np.isinf(sweep[gridded.index_of(50.0)])
        assert np.isinf(sweep[0])

    def test_small_timeout_is_penalised(self, gridded):
        sweep = single_expectation_sweep(gridded)
        e_at_110 = sweep[gridded.index_of(110.0)]
        e_at_600 = sweep[gridded.index_of(600.0)]
        assert e_at_110 > e_at_600

    def test_outliers_make_infinite_patience_costly(self, gridded):
        # with rho > 0, E_J at the largest timeout exceeds the minimum:
        # waiting forever on a faulted job is never optimal
        sweep = single_expectation_sweep(gridded)
        finite = sweep[np.isfinite(sweep)]
        assert sweep[-1] > finite.min()

    def test_strategy_object_delegates(self, gridded):
        s = SingleResubmission(t_inf=600.0)
        assert s.expectation(gridded) == pytest.approx(
            single_moments(gridded, 600.0).expectation
        )
        assert s.mean_parallel_jobs(gridded) == 1.0
        assert "600" in s.describe()

    def test_strategy_validation(self):
        with pytest.raises(ValueError):
            SingleResubmission(t_inf=0.0)

    def test_moments_at_zero_mass_timeout(self, gridded):
        mom = single_moments(gridded, 50.0)
        assert np.isinf(mom.expectation)
        assert np.isinf(mom.std)


class TestMultipleSubmission:
    def test_b1_equals_single(self, gridded):
        e1 = multiple_expectation_sweep(gridded, 1)
        es = single_expectation_sweep(gridded)
        np.testing.assert_allclose(e1[1:], es[1:], rtol=1e-9)
        s1 = multiple_std_sweep(gridded, 1)
        ss = single_std_sweep(gridded)
        mask = np.isfinite(ss)
        np.testing.assert_allclose(s1[mask], ss[mask], rtol=1e-9)

    def test_expectation_decreases_with_b(self, gridded):
        t = 800.0
        values = [multiple_moments(gridded, b, t).expectation for b in (1, 2, 4, 8)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_std_decreases_with_b(self, gridded):
        t = 800.0
        values = [multiple_moments(gridded, b, t).std for b in (1, 2, 4, 8)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_sweep_matches_pointwise(self, gridded):
        for b in (2, 5):
            sweep = multiple_expectation_sweep(gridded, b)
            k = gridded.index_of(700.0)
            assert sweep[k] == pytest.approx(
                multiple_moments(gridded, b, 700.0).expectation, rel=1e-9
            )

    def test_invalid_b(self, gridded):
        with pytest.raises(ValueError):
            multiple_expectation_sweep(gridded, 0)
        with pytest.raises(ValueError):
            MultipleSubmission(b=0, t_inf=100.0)
        with pytest.raises(ValueError):
            MultipleSubmission(b=1.5, t_inf=100.0)

    def test_n_parallel_is_b(self, gridded):
        assert MultipleSubmission(b=7, t_inf=500.0).mean_parallel_jobs(gridded) == 7.0

    def test_batch_beats_single_at_same_timeout(self, gridded):
        t = 600.0
        assert (
            multiple_moments(gridded, 3, t).expectation
            < single_moments(gridded, t).expectation
        )

    def test_describe(self):
        assert "b=4" in MultipleSubmission(b=4, t_inf=880.0).describe()


class TestDelayedResubmission:
    def test_degenerates_to_single_at_ratio_one(self, gridded):
        # t_inf = t0: the copy is submitted exactly when the original is
        # cancelled -> single resubmission with timeout t0
        t0 = 500.0
        mom_d = delayed_moments(gridded, t0, t0)
        mom_s = single_moments(gridded, t0)
        assert mom_d.expectation == pytest.approx(mom_s.expectation, rel=1e-9)
        assert mom_d.std == pytest.approx(mom_s.std, rel=1e-6)

    def test_longer_t_inf_helps(self, gridded):
        # for fixed t0, raising t_inf within (t0, 2 t0] reduces E_J:
        # the first job gets more chance while the copy is already queued
        t0 = 400.0
        e1 = delayed_moments(gridded, t0, 500.0).expectation
        e2 = delayed_moments(gridded, t0, 700.0).expectation
        assert e2 < e1

    def test_sweep_matches_pointwise(self, gridded):
        k0 = gridded.index_of(400.0)
        sweep = delayed_expectation_for_t0(gridded, k0)
        for t_inf in (500.0, 600.0, 800.0):
            k = gridded.index_of(t_inf)
            assert sweep[k] == pytest.approx(
                delayed_moments(gridded, 400.0, t_inf).expectation, rel=1e-9
            )

    def test_sweep_infeasible_region_is_inf(self, gridded):
        k0 = gridded.index_of(400.0)
        sweep = delayed_expectation_for_t0(gridded, k0)
        assert np.isinf(sweep[k0 - 1])  # t_inf < t0
        assert np.isinf(sweep[2 * k0 + 1])  # t_inf > 2 t0

    def test_constraint_validation(self, gridded):
        with pytest.raises(ValueError, match="2"):
            delayed_moments(gridded, 400.0, 900.0)
        with pytest.raises(ValueError, match="2"):
            delayed_moments(gridded, 400.0, 300.0)
        with pytest.raises(ValueError):
            DelayedResubmission(t0=400.0, t_inf=900.0)
        with pytest.raises(ValueError):
            DelayedResubmission(t0=-1.0, t_inf=1.0)

    def test_survival_starts_at_one_decreases(self, gridded):
        s = delayed_survival(gridded, 400.0, 600.0)
        assert s[0] == pytest.approx(1.0)
        assert (np.diff(s) <= 1e-12).all()
        assert s[-1] < 1e-6

    def test_survival_integrates_to_expectation(self, gridded):
        # E[J] = ∫ P(J>t) dt — ties the closed form to the piecewise survival
        t0, t_inf = 400.0, 600.0
        s = delayed_survival(gridded, t0, t_inf)
        e_direct = gridded.grid.integrate(s)
        e_closed = delayed_moments(gridded, t0, t_inf).expectation
        assert e_closed == pytest.approx(e_direct, rel=1e-6)

    def test_second_moment_from_survival(self, gridded):
        # E[J^2] = ∫ 2 t P(J>t) dt
        t0, t_inf = 400.0, 600.0
        s = delayed_survival(gridded, t0, t_inf)
        e_j2_direct = gridded.grid.integrate(2.0 * gridded.times * s)
        mom = delayed_moments(gridded, t0, t_inf)
        e_j2_closed = mom.std**2 + mom.expectation**2
        assert e_j2_closed == pytest.approx(e_j2_direct, rel=1e-6)

    def test_expectation_between_single_and_multiple(self, gridded):
        # §6: delayed beats single resubmission but not a 2-burst
        from repro.core.optimize import (
            optimize_delayed,
            optimize_multiple,
            optimize_single,
        )

        s = optimize_single(gridded)
        d = optimize_delayed(gridded, t0_min=150.0, t0_max=1500.0)
        m2 = optimize_multiple(gridded, 2)
        assert d.e_j < s.e_j
        assert m2.e_j < d.e_j

    def test_describe_timeline(self):
        d = DelayedResubmission(t0=300.0, t_inf=450.0)
        text = d.describe_timeline()
        assert "job 1" in text and "job 3" in text
        assert "300" in text

    def test_strategy_object_moments(self, gridded):
        d = DelayedResubmission(t0=400.0, t_inf=600.0)
        assert d.moments(gridded).expectation == pytest.approx(
            delayed_moments(gridded, 400.0, 600.0).expectation
        )


class TestNParallel:
    def test_below_t0_is_one(self):
        assert n_parallel_for_latency(100.0, 300.0, 450.0) == 1.0
        assert n_parallel_for_latency(0.0, 300.0, 450.0) == 1.0

    def test_paper_table3_values(self):
        # §6.2 / Table 3 entries recomputed exactly:
        # ratio 1.3: t0=406, EJ=438 -> N = 2 - 406/438
        assert n_parallel_for_latency(438.0, 406.0, 528.0) == pytest.approx(
            2 - 406 / 438, abs=5e-3
        )
        # ratio 1.4: t0=354, EJ=432
        assert n_parallel_for_latency(432.0, 354.0, 496.0) == pytest.approx(
            2 - 354 / 432, abs=5e-3
        )
        # ratio 1.6: t0=272, t_inf=435, EJ=444 (l >= t_inf branch)
        expected = (272 + 2 * (435 - 272) + (444 - 435)) / 444
        assert n_parallel_for_latency(444.0, 272.0, 435.0) == pytest.approx(
            expected, abs=5e-3
        )

    def test_n1_branch_below_t_inf(self):
        # l in [t0, t_inf): N = 2 - t0/l
        assert n_parallel_for_latency(350.0, 300.0, 450.0) == pytest.approx(
            2 - 300 / 350
        )

    def test_asymptote_is_ratio(self):
        # lim N_// = t_inf / t0 (paper §6.1)
        val = n_parallel_for_latency(1e7, 300.0, 450.0)
        assert val == pytest.approx(450.0 / 300.0, rel=1e-3)

    def test_bound_paper(self):
        # N_// in [1, 2 - 1/(n+1)] (paper §6.1)
        t0, t_inf = 300.0, 560.0
        for l in np.linspace(1.0, 5000.0, 200):
            n = int(l // t0)
            val = n_parallel_for_latency(float(l), t0, t_inf)
            assert 1.0 - 1e-9 <= val <= 2.0 - 1.0 / (n + 1) + 1e-9

    def test_vectorised_over_l_and_t_inf(self):
        l = np.array([100.0, 350.0, 900.0])
        t_inf = np.array([450.0, 450.0, 500.0])
        out = n_parallel_for_latency(l, 300.0, t_inf)
        assert out.shape == (3,)
        assert out[0] == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            n_parallel_for_latency(100.0, 300.0, 700.0)  # ratio > 2
        with pytest.raises(ValueError):
            n_parallel_for_latency(-1.0, 300.0, 450.0)

    def test_exact_mean_parallel_close_to_plugin(self, gridded):
        # the paper's plug-in N_//(E_J) approximates E[N_//(J)]
        t0, t_inf = 400.0, 600.0
        exact = mean_parallel_exact(gridded, t0, t_inf)
        e_j = delayed_moments(gridded, t0, t_inf).expectation
        plugin = n_parallel_for_latency(e_j, t0, t_inf)
        assert exact == pytest.approx(plugin, abs=0.12)
        assert 1.0 <= exact <= 2.0

    def test_exact_mean_parallel_strategy_method(self, gridded):
        d = DelayedResubmission(t0=400.0, t_inf=600.0)
        assert d.mean_parallel_jobs_exact(gridded) == pytest.approx(
            mean_parallel_exact(gridded, 400.0, 600.0)
        )
