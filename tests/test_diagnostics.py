"""Tests for hazard/mean-residual diagnostics and the stationarity check."""

import numpy as np
import pytest

from repro.core.diagnostics import (
    diagnose_timeout,
    hazard_rate,
    mean_residual_latency,
    timeout_stationarity_gap,
)
from repro.core.model import LatencyModel
from repro.core.optimize import optimize_single
from repro.distributions import Exponential
from repro.util.grids import TimeGrid


class TestHazardRate:
    def test_exponential_hazard_constant_without_outliers(self):
        lam = 0.01
        gm = LatencyModel(Exponential(rate=lam), rho=0.0).on_grid(
            TimeGrid(t_max=800.0, dt=0.5)
        )
        h = hazard_rate(gm)
        # interior points (edges suffer finite differences)
        np.testing.assert_allclose(h[20:-20], lam, rtol=0.02)

    def test_outliers_make_hazard_decay(self):
        gm = LatencyModel(Exponential(rate=0.01), rho=0.2).on_grid(
            TimeGrid(t_max=3000.0, dt=1.0)
        )
        h = hazard_rate(gm)
        # as the defective mass dominates, the hazard falls toward zero
        assert h[2500] < 0.5 * h[100]

    def test_heavy_tail_hazard_decreases(self, gridded):
        h = hazard_rate(gridded)
        k1 = gridded.index_of(400.0)
        k2 = gridded.index_of(4000.0)
        assert h[k2] < h[k1]

    def test_nonnegative(self, gridded):
        assert (hazard_rate(gridded) >= 0.0).all()


class TestMeanResidual:
    def test_nonnegative_and_finite(self, gridded):
        mrl = mean_residual_latency(gridded)
        assert (mrl >= -1e-9).all()
        assert np.isfinite(mrl).all()

    def test_exponential_memoryless(self):
        gm = LatencyModel(Exponential(rate=0.01), rho=0.0).on_grid(
            TimeGrid(t_max=4000.0, dt=1.0)
        )
        mrl = mean_residual_latency(gm)
        # memoryless: E[R - t | R > t] = 100 for all t well inside the grid
        assert mrl[100] == pytest.approx(100.0, rel=0.1)
        assert mrl[1000] == pytest.approx(100.0, rel=0.15)


class TestSmoothedHazard:
    def test_window_validation(self, gridded):
        with pytest.raises(ValueError):
            hazard_rate(gridded, window=-1)

    def test_smoothing_preserves_scale(self, gridded):
        raw = hazard_rate(gridded)
        smooth = hazard_rate(gridded, window=25)
        k = gridded.index_of(500.0)
        assert smooth[k] == pytest.approx(raw[k], rel=0.3)

    def test_empirical_optimum_is_stationary(self, gridded_2006):
        # the jittery ECDF density needs the smoothing window for the
        # stationarity verdict to hold at the optimiser's argmin
        opt = optimize_single(gridded_2006)
        diag = diagnose_timeout(gridded_2006, opt.t_inf, window=25)
        assert "stationary" in diag.verdict


class TestStationarity:
    def test_gap_crosses_zero_near_optimum(self, gridded):
        opt = optimize_single(gridded)
        gap = timeout_stationarity_gap(gridded)
        k = gridded.index_of(opt.t_inf)
        # within a small window of the optimum, the gap changes sign
        window = gap[max(1, k - 40): k + 40]
        finite = window[np.isfinite(window)]
        assert finite.min() < 0 < finite.max()

    def test_diagnose_at_optimum_is_stationary(self, gridded):
        opt = optimize_single(gridded)
        diag = diagnose_timeout(gridded, opt.t_inf)
        assert "stationary" in diag.verdict
        assert abs(diag.gap) < 0.1 * diag.e_j

    def test_diagnose_too_small_timeout(self, gridded):
        # below the optimum E_J is still decreasing: raising the timeout pays
        opt = optimize_single(gridded)
        diag = diagnose_timeout(gridded, opt.t_inf * 0.5)
        assert "raising the timeout still pays" in diag.verdict
        assert diag.gap > 0

    def test_diagnose_too_large_timeout(self, gridded):
        opt = optimize_single(gridded)
        diag = diagnose_timeout(gridded, min(opt.t_inf * 4.0, 7800.0))
        assert diag.gap < 0 or not np.isfinite(diag.gap)
        if np.isfinite(diag.gap):
            assert "cancel sooner" in diag.verdict

    def test_exponential_never_wants_timeout(self):
        # memoryless latency without faults: 1/hazard = mean = E_J at the
        # stationary plateau, so the gap hovers near zero everywhere
        gm = LatencyModel(Exponential(rate=0.01), rho=0.0).on_grid(
            TimeGrid(t_max=4000.0, dt=1.0)
        )
        diag = diagnose_timeout(gm, 1000.0)
        assert abs(diag.gap) < 0.1 * diag.e_j
