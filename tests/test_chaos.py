"""Middleware fault domain + chaos harness: validation, laws, conservation.

Four layers under test.  **Configs** (RetryPolicy, SubmitFaultConfig,
BrokerOutageConfig and their GridConfig cross-checks) must die at
construction with a named parameter.  **Mechanics**: circuit-breaker
transitions, broker outages in both modes (reject bounces, black-hole
swallows until the client's submit timeout), stale snapshots on
recovery, retries failing over across the federation, and at-least-once
duplicates minted on retry and reconciled by sibling-cancel.  **Laws**:
a retry policy with nothing to retry is invisible — bit-identical
outcomes on a single-broker grid — and grids without any middleware
fault domain never build one.  **Conservation**: the seeded chaos
schedules run on every site×WMS engine corner and the auditor proves
every task accounted for exactly once; a tampered ledger must fail it.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.strategies import MultipleSubmission, SingleResubmission
from repro.gridsim import (
    BrokerConfig,
    BrokerOutageConfig,
    CircuitBreaker,
    FaultModel,
    GridConfig,
    GridMonitor,
    GridSimulator,
    Job,
    JobState,
    RetryPolicy,
    SiteConfig,
    StormConfig,
    SubmitFaultConfig,
    WeatherConfig,
    audit_conservation,
    chaos_grid_config,
    chaos_matrix,
    fault_schedule,
    run_chaos,
    run_strategy_on_grid,
    standard_schedules,
)
from repro.gridsim.client import launch_task


def fed_config(**kw) -> GridConfig:
    """A small two-broker grid the fault scenarios perturb."""
    defaults = dict(
        sites=(
            SiteConfig("a", 8, utilization=0.7, runtime_median=600.0),
            SiteConfig("b", 8, utilization=0.7, runtime_median=600.0),
            SiteConfig("c", 8, utilization=0.7, runtime_median=900.0),
            SiteConfig("d", 8, utilization=0.7, runtime_median=900.0),
        ),
        matchmaking_median=30.0,
        faults=FaultModel(p_lost=0.0, p_stuck=0.0),
        brokers=(
            BrokerConfig(name="wms-a", sites=("a", "b")),
            BrokerConfig(name="wms-b", sites=("c", "d")),
        ),
    )
    defaults.update(kw)
    return GridConfig(**defaults)


class TestConfigValidation:
    """Bad middleware configs die at construction with a named parameter."""

    def test_retry_policy(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError, match="submit_timeout"):
            RetryPolicy(submit_timeout=0.0)
        with pytest.raises(ValueError, match="breaker_threshold"):
            RetryPolicy(breaker_threshold=0)
        with pytest.raises(ValueError, match="breaker_reset"):
            RetryPolicy(breaker_reset=-1.0)

    def test_submit_fault_config(self):
        with pytest.raises(ValueError, match="p_fail"):
            SubmitFaultConfig(p_fail=1.5)
        with pytest.raises(ValueError, match="p_landed"):
            SubmitFaultConfig(p_landed=-0.1)

    def test_broker_outage_config(self):
        with pytest.raises(ValueError, match="broker"):
            BrokerOutageConfig(broker="")
        with pytest.raises(ValueError, match="start"):
            BrokerOutageConfig(broker="x", start=-1.0)
        with pytest.raises(ValueError, match="duration"):
            BrokerOutageConfig(broker="x", duration=0.0)
        with pytest.raises(ValueError, match="mode"):
            BrokerOutageConfig(broker="x", mode="flaky")

    def test_weather_config_rejects_wrong_types(self):
        with pytest.raises(TypeError, match="BrokerOutageConfig"):
            WeatherConfig(broker_outages=(3,))

    def test_grid_config_rejects_unknown_broker_name(self):
        weather = WeatherConfig(
            broker_outages=(BrokerOutageConfig(broker="wms-z"),)
        )
        with pytest.raises(ValueError, match="wms-z.*wms-a"):
            fed_config(weather=weather)

    def test_grid_config_rejects_broker_outage_without_federation(self):
        weather = WeatherConfig(
            broker_outages=(BrokerOutageConfig(broker="wms-a"),)
        )
        with pytest.raises(ValueError, match="no federated brokers"):
            fed_config(brokers=(), weather=weather)

    def test_grid_config_rejects_storm_broker_prob_without_federation(self):
        weather = WeatherConfig(storm=StormConfig(broker_prob=0.5))
        with pytest.raises(ValueError, match="broker_prob"):
            fed_config(brokers=(), weather=weather)

    def test_grid_config_rejects_wrong_middleware_types(self):
        with pytest.raises(TypeError, match="submit_faults"):
            fed_config(submit_faults=3)
        with pytest.raises(TypeError, match="retry"):
            fed_config(retry=3)

    def test_chaos_grid_config_bounds(self):
        with pytest.raises(ValueError, match="n_brokers"):
            chaos_grid_config(n_sites=2, n_brokers=3)

    def test_fault_schedule_needs_federation(self):
        with pytest.raises(ValueError, match="federated"):
            fault_schedule(fed_config(brokers=()), seed=1)


class TestCircuitBreaker:
    """closed → open → half-open trial → closed (or back open)."""

    def test_trips_after_threshold_and_recloses_on_success(self):
        br = CircuitBreaker(threshold=2, reset_timeout=100.0)
        assert br.state == "closed" and br.allow(0.0)
        br.record_failure(0.0)
        assert br.state == "closed"
        br.record_failure(1.0)
        assert br.state == "open" and br.trips == 1
        assert not br.allow(50.0)  # cooling down
        assert br.allow(101.0)  # half-open: one trial
        assert not br.allow(150.0)  # trial window re-armed
        br.record_success()
        assert br.state == "closed" and br.allow(151.0)

    def test_failed_trial_reopens(self):
        br = CircuitBreaker(threshold=1, reset_timeout=100.0)
        br.record_failure(0.0)
        assert br.trips == 1
        assert br.allow(100.0)
        br.record_failure(100.0)
        assert br.state == "open" and br.trips == 2
        assert not br.allow(150.0)


class TestBrokerOutages:
    def outage_grid(self, mode: str, retry=None, seed: int = 13):
        weather = WeatherConfig(
            broker_outages=(
                BrokerOutageConfig(
                    broker="wms-a", start=3_600.0, duration=1_800.0, mode=mode
                ),
            )
        )
        return GridSimulator(
            fed_config(weather=weather, retry=retry), seed=seed
        )

    def test_scheduled_outage_flips_accepting_and_recovers(self):
        grid = self.outage_grid("reject")
        broker = grid.brokers[0]
        assert broker.accepting
        grid.run_until(3_700.0)
        assert not broker.accepting and broker.outage_mode == "reject"
        assert broker.outages_started == 1
        grid.run_until(5_500.0)
        assert broker.accepting

    def test_recovered_broker_serves_stale_snapshot(self):
        grid = self.outage_grid("reject")
        broker = grid.brokers[0]
        grid.run_until(5_500.0)
        # recovery reset the snapshot clock: the pre-outage view is
        # served for one full refresh window from the recovery instant
        assert broker._snapshot_time == pytest.approx(5_400.0)

    def test_reject_without_retry_loses_the_copy(self):
        grid = self.outage_grid("reject")
        grid.run_until(3_700.0)
        job = Job(runtime=600.0)
        grid.submit(job, via="wms-a")
        assert job.state is JobState.LOST
        assert grid._mw.totals()["rejects"] == 1

    def test_black_hole_without_retry_loses_the_copy(self):
        grid = self.outage_grid("black-hole")
        grid.run_until(3_700.0)
        job = Job(runtime=600.0)
        grid.submit(job, via="wms-a")
        assert job.state is JobState.LOST
        assert grid._mw.totals()["black_holed"] == 1

    def test_retry_fails_over_to_surviving_broker(self):
        retry = RetryPolicy(
            max_attempts=3,
            backoff_base=60.0,
            breaker_threshold=1,
            breaker_reset=7_200.0,
        )
        grid = self.outage_grid("reject", retry=retry)
        grid.run_until(3_700.0)
        results: list = []
        launch_task(
            grid, SingleResubmission(t_inf=3_000.0), 600.0, results, via="wms-a"
        )
        grid.run_until(3_700.0 + 4_000.0)
        totals = grid._mw.totals()
        assert results, "task should finish via the surviving broker"
        assert totals["failovers"] >= 1
        assert totals["breaker_trips"] >= 1
        assert grid._mw.breakers[0].trips >= 1

    def test_storm_can_down_a_broker(self):
        weather = WeatherConfig(
            storm=StormConfig(
                mean_interval=1_800.0,
                mean_duration=900.0,
                subset_size=2,
                broker_prob=1.0,
                broker_mode="reject",
            )
        )
        grid = GridSimulator(fed_config(weather=weather), seed=3)
        grid.run_until(24 * 3_600.0)
        started = sum(b.outages_started for b in grid.brokers)
        assert grid.storm.broker_outages_started >= 1
        assert started == grid.storm.broker_outages_started
        # at least one full down -> recover cycle completed (a final storm
        # may still be in flight at the horizon, so not all need be up)
        still_down = sum(not b.accepting for b in grid.brokers)
        assert started - still_down >= 1

    def test_storm_without_broker_prob_keeps_site_stream(self):
        """broker_prob=0 consumes no draws: site weather is unchanged."""
        storm = StormConfig(mean_interval=1_800.0, mean_duration=900.0)
        plain = GridSimulator(
            fed_config(weather=WeatherConfig(storm=storm)), seed=3
        )
        plain.run_until(24 * 3_600.0)
        assert plain.storm.broker_outages_started == 0
        grid = self.outage_grid("reject")  # scheduled outage, same sites
        assert all(b.accepting for b in grid.brokers)


class TestDuplicates:
    def test_lost_ack_mints_duplicate_and_sibling_cancel_reconciles(self):
        cfg = fed_config(
            submit_faults=SubmitFaultConfig(p_fail=1.0, p_landed=1.0),
            retry=RetryPolicy(max_attempts=3, backoff_base=30.0, jitter=0.0),
        )
        grid = GridSimulator(cfg, seed=5)
        grid.warm_up(1_800.0)
        grid.enable_task_ledger()
        results: list = []
        task = launch_task(grid, SingleResubmission(t_inf=3_000.0), 600.0, results)
        grid.run_until(grid.now + 6_000.0)
        if not task.done:
            task.expire()
        mw = grid._mw
        assert mw.duplicates >= 1, "every attempt lands as a ghost"
        assert mw.duplicates == grid.duplicates_reconciled + sum(
            1 for _, j in grid.task_ledger if j.duplicate
        )
        audit_conservation(grid).verify()

    def test_without_retry_landed_failure_is_a_clean_accept(self):
        cfg = fed_config(
            submit_faults=SubmitFaultConfig(p_fail=1.0, p_landed=1.0)
        )
        grid = GridSimulator(cfg, seed=5)
        job = Job(runtime=600.0)
        grid.submit(job, via=0)
        # no retry context: nobody would ever resubmit, so the landed
        # copy just runs — no duplicate to reconcile
        assert job.state is not JobState.LOST
        assert grid._mw.duplicates == 0


class TestZeroFaultParity:
    """A retry policy with nothing to retry is invisible (single broker)."""

    @pytest.mark.parametrize("wms_engine", ["batched", "event"])
    def test_retry_on_calm_single_broker_grid_is_bit_identical(self, wms_engine):
        base = dataclasses.replace(
            chaos_grid_config(n_brokers=1), wms_engine=wms_engine
        )
        outcomes = []
        for cfg in (base, dataclasses.replace(base, retry=RetryPolicy())):
            grid = GridSimulator(cfg, seed=3)
            grid.warm_up(2 * 3_600.0)
            outcomes.append(
                run_strategy_on_grid(
                    grid,
                    MultipleSubmission(b=2, t_inf=1_800.0),
                    20,
                    task_interval=120.0,
                    runtime=600.0,
                )
            )
        plain, resilient = outcomes
        assert np.array_equal(plain.j, resilient.j)
        assert np.array_equal(plain.jobs_submitted, resilient.jobs_submitted)
        assert plain.gave_up == resilient.gave_up

    def test_no_middleware_domain_without_fault_config(self):
        assert GridSimulator(fed_config(), seed=1)._mw is None
        assert (
            GridSimulator(fed_config(retry=RetryPolicy()), seed=1)._mw
            is not None
        )
        assert (
            GridSimulator(
                fed_config(submit_faults=SubmitFaultConfig()), seed=1
            )._mw
            is not None
        )


class TestConservation:
    @pytest.mark.parametrize("site_engine", ["vector", "event"])
    @pytest.mark.parametrize("wms_engine", ["batched", "event"])
    def test_standard_schedules_conserve_on_every_corner(
        self, site_engine, wms_engine
    ):
        base = chaos_grid_config()
        for name, cfg in standard_schedules(base):
            run_cfg = dataclasses.replace(
                cfg, site_engine=site_engine, wms_engine=wms_engine
            )
            out = run_chaos(
                run_cfg, n_tasks=12, warm=2 * 3_600.0, horizon=6 * 3_600.0
            )
            assert out.ok, f"{name}: {out.report.violations}"
            assert out.finished + out.gave_up == 12
            assert out.report.tasks == 12

    def test_generated_schedule_is_reproducible_and_conserves(self):
        base = chaos_grid_config()
        a = fault_schedule(base, seed=21, start=2 * 3_600.0)
        b = fault_schedule(base, seed=21, start=2 * 3_600.0)
        assert a == b  # same seed, same schedule
        assert a != fault_schedule(base, seed=22, start=2 * 3_600.0)
        out = run_chaos(a, n_tasks=12, warm=2 * 3_600.0, horizon=6 * 3_600.0)
        out.report.verify()

    def test_matrix_rows_cover_all_corners(self):
        base = chaos_grid_config(n_sites=2, n_brokers=2)
        sched = [("dup", fault_schedule(base, 9, n_broker_outages=0))]
        rows = chaos_matrix(
            base, sched, n_tasks=6, warm=1_800.0, horizon=4 * 3_600.0
        )
        assert {r["corner"] for r in rows} == {
            "vector×batched",
            "vector×event",
            "event×batched",
            "event×event",
        }
        assert all(r["ok"] for r in rows)

    def test_audit_requires_ledger(self):
        grid = GridSimulator(fed_config(), seed=1)
        with pytest.raises(RuntimeError, match="enable_task_ledger"):
            audit_conservation(grid)

    def test_tampered_ledger_fails_the_audit(self):
        cfg = fed_config(retry=RetryPolicy())
        grid = GridSimulator(cfg, seed=5)
        grid.enable_task_ledger()
        results: list = []
        task = launch_task(grid, SingleResubmission(t_inf=3_000.0), 600.0, results)
        grid.run_until(6_000.0)
        if not task.done:
            task.expire()
        audit_conservation(grid).verify()
        # an off-the-books copy breaks the jobs_used invariant
        grid.task_ledger.append((task, Job(runtime=600.0)))
        report = audit_conservation(grid)
        assert not report.ok
        assert any("off the books" in v for v in report.violations)
        with pytest.raises(AssertionError, match="conservation violated"):
            report.verify()

    def test_unsettled_task_is_a_violation(self):
        grid = GridSimulator(fed_config(retry=RetryPolicy()), seed=5)
        grid.enable_task_ledger()
        launch_task(grid, SingleResubmission(t_inf=30_000.0), 600.0, [])
        report = audit_conservation(grid)
        assert any("not settled" in v for v in report.violations)


class TestTelemetry:
    def faulty_grid(self, seed: int = 5) -> GridSimulator:
        cfg = fed_config(
            submit_faults=SubmitFaultConfig(p_fail=0.5, p_landed=0.5),
            retry=RetryPolicy(max_attempts=3, backoff_base=30.0),
        )
        return GridSimulator(cfg, seed=seed)

    def run_campaign(self, grid: GridSimulator) -> None:
        results: list = []
        tasks = [
            launch_task(grid, SingleResubmission(t_inf=1_800.0), 600.0, results)
            for _ in range(10)
        ]
        grid.run_until(grid.now + 6 * 3_600.0)
        for t in tasks:
            t.expire()

    def test_weather_report_carries_broker_sections(self):
        grid = self.faulty_grid()
        self.run_campaign(grid)
        report = grid.weather_report()
        assert set(report["brokers"]) == {"wms-a", "wms-b"}
        per_broker = report["brokers"]["wms-a"]
        assert {
            "submits",
            "rejects",
            "failovers",
            "outages",
            "breaker_trips",
            "breaker_state",
        } <= set(per_broker)
        assert report["duplicates"]["created"] >= report["duplicates"]["reconciled"]
        total_submits = sum(b["submits"] for b in report["brokers"].values())
        assert total_submits == grid.jobs_submitted

    def test_monitor_samples_middleware_counters(self):
        grid = self.faulty_grid()
        monitor = GridMonitor(grid, period=600.0)
        monitor.start()
        self.run_campaign(grid)
        last = monitor.samples[-1]
        assert last.broker_submits > 0
        assert last.broker_submits >= last.broker_rejects
        # calm grid samples stay all-zero on the middleware columns
        calm = GridSimulator(fed_config(), seed=5)
        m2 = GridMonitor(calm, period=600.0)
        m2.start()
        calm.run_until(1_200.0)
        assert m2.samples[-1].broker_submits == 0
        assert m2.samples[-1].duplicates_reconciled == 0
