"""Parallel experiment runner: output equivalence and CLI wiring."""

from __future__ import annotations

import io

import pytest

from repro.cli import main
from repro.experiments.runner import iter_many, render_experiment, run_many

#: cheap experiments covering both the context-free and context paths
FAST_IDS = ["fig1", "table1"]
DT = 4.0


class TestRunMany:
    def test_parallel_output_equals_sequential(self):
        seq = run_many(FAST_IDS, seed=2009, dt=DT, jobs=1)
        par = run_many(FAST_IDS, seed=2009, dt=DT, jobs=2)
        assert seq == par  # byte-identical, not merely similar

    def test_result_order_follows_request_order(self):
        out = run_many(list(reversed(FAST_IDS)), seed=2009, dt=DT, jobs=2)
        assert list(out) == list(reversed(FAST_IDS))

    def test_single_id_runs_in_process(self):
        out = run_many(["fig1"], seed=2009, dt=DT, jobs=8)
        assert out["fig1"] == render_experiment("fig1", seed=2009, dt=DT)

    def test_unknown_id_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_many(["fig1", "nope"], jobs=2)

    def test_jobs_validated(self):
        with pytest.raises(ValueError, match="jobs"):
            run_many(FAST_IDS, jobs=0)

    def test_seed_threads_through(self):
        a = run_many(["fig1"], seed=1, dt=DT)["fig1"]
        b = run_many(["fig1"], seed=2, dt=DT)["fig1"]
        assert a != b

    def test_iter_many_streams_in_request_order(self):
        # incremental yield lets the CLI persist each finished
        # experiment before later ones complete (or fail)
        it = iter_many(FAST_IDS, seed=2009, dt=DT, jobs=2)
        first_id, first_text = next(it)
        assert first_id == FAST_IDS[0]
        assert first_text.startswith(f"=== {FAST_IDS[0]}")
        rest = list(it)
        assert [i for i, _ in rest] == FAST_IDS[1:]


class TestCliJobs:
    def run_cli(self, *argv):
        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def test_jobs_flag_writes_identical_files(self, tmp_path):
        seq_dir, par_dir = tmp_path / "seq", tmp_path / "par"
        for d, jobs in ((seq_dir, "1"), (par_dir, "2")):
            code, _ = self.run_cli(
                "run", "fig1", "--dt", str(DT), "--out", str(d), "--jobs", jobs
            )
            assert code == 0
        assert (
            (seq_dir / "fig1.txt").read_bytes()
            == (par_dir / "fig1.txt").read_bytes()
        )

    def test_invalid_jobs_rejected(self):
        code, text = self.run_cli("run", "fig1", "--jobs", "0")
        assert code == 2
        assert "--jobs" in text


class TestIntraExperimentParallelism:
    """The same pool machinery, fanned out *within* heavy experiments."""

    def test_val_des_parallel_is_byte_identical(self):
        from repro.experiments import run_experiment

        kw = dict(n_tasks=20, probe_days=0.25)
        seq = run_experiment("val-des", jobs=1, **kw).render()
        par = run_experiment("val-des", jobs=3, **kw).render()
        assert seq == par

    def test_abl_adopt_parallel_is_byte_identical(self):
        from repro.experiments import run_experiment

        kw = dict(fleet_sizes=(10, 25), window=3600.0, runtime=600.0)
        seq = run_experiment("abl-adopt", jobs=1, **kw).render()
        par = run_experiment("abl-adopt", jobs=4, **kw).render()
        assert seq == par

    def test_strategy_batch_env_gate(self, monkeypatch):
        from repro.experiments.runner import run_strategy_batch
        from repro.gridsim import warmed_snapshot
        from repro.gridsim.client import _resolve_intra_jobs
        from repro.core.strategies import SingleResubmission
        from repro.experiments.adoption_sweep import adoption_grid_config

        monkeypatch.setenv("REPRO_INTRA_JOBS", "2")
        assert _resolve_intra_jobs(None) == 2
        monkeypatch.delenv("REPRO_INTRA_JOBS")
        assert _resolve_intra_jobs(None) == 1
        with pytest.raises(ValueError, match="jobs"):
            _resolve_intra_jobs(0)

        # parallel vs sequential through the batch API itself
        snap = warmed_snapshot(adoption_grid_config(), seed=23, duration=900.0)
        runs = [
            (SingleResubmission(t_inf=3000.0), 8, dict(task_interval=120.0)),
            (SingleResubmission(t_inf=4000.0), 8, dict(task_interval=120.0)),
        ]
        seq = run_strategy_batch(snap, runs, jobs=1)
        par = run_strategy_batch(snap, runs, jobs=2)
        for (o_s, q_s), (o_p, q_p) in zip(seq, par):
            assert (o_s.j == o_p.j).all()
            assert (o_s.jobs_submitted == o_p.jobs_submitted).all()
            assert o_s.gave_up == o_p.gave_up
            assert q_s == q_p
