"""Fair-share invariants across both site engines.

Three contracts pin the new scheduling layer:

* **degeneracy** — with one VO at share 1.0 both fair-share engines are
  *exactly* the plain FIFO engines (identical fingerprints and client
  traces), and grid configs declaring fewer than two VOs are wired with
  the plain classes;
* **work conservation** — a free core never coexists with a waiting job,
  whatever the VO mix;
* **share convergence** — under saturation each VO's decayed usage
  fraction converges to its allocated share.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.gridsim import (
    ComputingElement,
    FairShareComputingElement,
    FairShareState,
    FairShareVectorComputingElement,
    FaultModel,
    GridConfig,
    GridSimulator,
    Job,
    JobState,
    ProbeExperiment,
    SiteConfig,
    Simulator,
    VectorComputingElement,
)

SHARES3 = (("biomed", 0.5), ("atlas", 0.3), ("cms", 0.2))


def multi_vo_config(engine: str, util: float = 0.9, **kw) -> GridConfig:
    defaults = dict(
        sites=(
            SiteConfig(
                "a", 8, utilization=util, runtime_median=600.0, vo_shares=SHARES3
            ),
            SiteConfig(
                "b",
                16,
                utilization=min(util + 0.05, 1.3),
                runtime_median=900.0,
                vo_shares=SHARES3[:2],
            ),
        ),
        matchmaking_median=30.0,
        faults=FaultModel(p_lost=0.02, p_stuck=0.02),
        site_engine=engine,
    )
    defaults.update(kw)
    return GridConfig(**defaults)


def site_fingerprint(grid: GridSimulator) -> tuple:
    return (
        grid.now,
        tuple(s.queue_length for s in grid.sites),
        tuple(s.busy_cores for s in grid.sites),
        tuple(s.jobs_started for s in grid.sites),
        tuple(s.jobs_completed for s in grid.sites),
        tuple(bg.jobs_generated for bg in grid.background),
    )


class TestFairShareState:
    def test_normalisation_and_selection(self):
        fs = FairShareState((("a", 2.0), ("b", 1.0), ("c", 1.0)))
        assert fs.shares == pytest.approx((0.5, 0.25, 0.25))
        # untouched usage: first candidate in registration order wins ties
        assert fs.select([0, 1, 2], 0.0) == 0
        fs.charge(0, 100.0, 0.0)
        # a's ratio is now 200, b/c still 0 -> b (lowest index) wins
        assert fs.select([0, 1, 2], 0.0) == 1
        fs.charge(1, 100.0, 0.0)
        assert fs.select([0, 1, 2], 0.0) == 2

    def test_decay_halves_usage_per_halflife(self):
        fs = FairShareState((("a", 1.0), ("b", 1.0)), halflife=100.0)
        fs.charge(0, 80.0, 0.0)
        assert fs.decayed_usage(100.0)[0] == pytest.approx(40.0)
        assert fs.decayed_usage(300.0)[0] == pytest.approx(10.0)
        # decayed_usage never commits: repeated reads are stable
        assert fs.decayed_usage(100.0)[0] == pytest.approx(40.0)

    def test_infinite_halflife_disables_decay(self):
        fs = FairShareState((("a", 1.0),), halflife=math.inf)
        fs.charge(0, 50.0, 0.0)
        assert fs.decayed_usage(1e12)[0] == 50.0

    def test_unknown_vo_maps_to_default(self):
        fs = FairShareState(SHARES3)
        assert fs.index_of("biomed") == 0
        assert fs.index_of("atlas") == 1
        assert fs.index_of("") == 0
        assert fs.index_of("nosuch") == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one VO"):
            FairShareState(())
        with pytest.raises(ValueError, match="duplicate VO"):
            FairShareState((("a", 0.5), ("a", 0.5)))
        with pytest.raises(ValueError, match="must be > 0"):
            FairShareState((("a", -1.0),))
        with pytest.raises(ValueError, match="non-empty string"):
            FairShareState((("", 1.0),))
        with pytest.raises(ValueError, match="halflife"):
            FairShareState((("a", 1.0),), halflife=0.0)


class TestSingleVoDegeneracy:
    """One VO at share 1.0 must be *exactly* the plain engine."""

    @pytest.mark.parametrize(
        "plain_cls,fs_cls",
        [
            (ComputingElement, FairShareComputingElement),
            (VectorComputingElement, FairShareVectorComputingElement),
        ],
        ids=["event", "vector"],
    )
    def test_deterministic_site_trace_identical(self, plain_cls, fs_cls):
        """Hand-fed workload: starts and telemetry match the plain class."""
        rng = np.random.default_rng(99)
        arrivals = np.sort(rng.uniform(0.0, 500.0, size=60))
        runtimes = rng.lognormal(3.0, 1.0, size=60)
        traces = []
        for cls, kwargs in (
            (plain_cls, {}),
            (fs_cls, {"vo_shares": (("only", 1.0),)}),
        ):
            sim = Simulator()
            started = []
            site = cls(
                "s", 3, sim, on_start=lambda j: started.append((sim.now, j.runtime)),
                **kwargs,
            )
            client_jobs = []
            for k, (a, r) in enumerate(zip(arrivals, runtimes)):
                if k % 5 == 2:
                    job = Job(runtime=float(r), tag="task")
                    client_jobs.append((float(a), job))
                    sim.schedule_at(float(a), lambda j=job: site.enqueue(j))
                else:
                    bg = Job(runtime=float(r), tag="background")
                    sim.schedule_at(float(a), lambda j=bg: site.enqueue(j))
            # cancel a couple of queued clients mid-flight
            sim.schedule_at(
                260.0,
                lambda: [
                    site.cancel(j)
                    for _, j in client_jobs
                    if j.state is JobState.QUEUED
                ],
            )
            points = []
            for t in (100.0, 260.0, 400.0, 2000.0):
                sim.run_until(t)
                points.append(
                    (site.queue_length, site.busy_cores, site.jobs_started)
                )
            sim.run_until(20_000.0)
            traces.append((tuple(started), tuple(points), site.jobs_completed))
        assert traces[0] == traces[1]

    @pytest.mark.parametrize("engine", ["event", "vector"])
    def test_grid_probe_trace_identical(self, engine):
        """Full grid: explicit 1-VO config is byte-identical to no-VO."""
        plain = multi_vo_config(engine)
        plain = GridConfig(
            sites=tuple(
                SiteConfig(
                    sc.name,
                    sc.n_cores,
                    utilization=sc.utilization,
                    runtime_median=sc.runtime_median,
                    runtime_sigma=sc.runtime_sigma,
                )
                for sc in plain.sites
            ),
            matchmaking_median=plain.matchmaking_median,
            faults=plain.faults,
            site_engine=engine,
        )
        onevo = GridConfig(
            sites=tuple(
                SiteConfig(
                    sc.name,
                    sc.n_cores,
                    utilization=sc.utilization,
                    runtime_median=sc.runtime_median,
                    runtime_sigma=sc.runtime_sigma,
                    vo_shares=(("only", 1.0),),
                )
                for sc in plain.sites
            ),
            matchmaking_median=plain.matchmaking_median,
            faults=plain.faults,
            site_engine=engine,
        )
        traces = []
        for cfg in (plain, onevo):
            g = GridSimulator(cfg, seed=31)
            g.warm_up(3600.0)
            traces.append(
                ProbeExperiment(g, n_slots=6, timeout=4000.0).run(30_000.0)
            )
        tp, tv = traces
        np.testing.assert_array_equal(tp.submit_times, tv.submit_times)
        np.testing.assert_array_equal(tp.latencies, tv.latencies)
        np.testing.assert_array_equal(tp.status_codes, tv.status_codes)

    def test_single_vo_routes_to_plain_engine_classes(self):
        cfg = GridConfig(
            sites=(SiteConfig("a", 4, vo_shares=(("only", 1.0),)),),
            site_engine="vector",
        )
        g = GridSimulator(cfg, seed=1)
        assert type(g.sites[0]) is VectorComputingElement
        cfg2 = multi_vo_config("vector")
        g2 = GridSimulator(cfg2, seed=1)
        assert type(g2.sites[0]) is FairShareVectorComputingElement


class TestEngineEquivalence:
    """Multi-VO grids: the vector lane mirrors the event oracle."""

    @pytest.mark.parametrize(
        "util", [0.4, 0.9, 1.2], ids=["idle", "busy", "saturated"]
    )
    def test_warmup_state_matches_oracle(self, util):
        grids = [
            GridSimulator(multi_vo_config(e, util=util), seed=17)
            for e in ("vector", "event")
        ]
        for g in grids:
            g.warm_up(24 * 3600.0)
        assert site_fingerprint(grids[0]) == site_fingerprint(grids[1])
        for sv, se in zip(grids[0].sites, grids[1].sites):
            assert sv.usage_shares() == se.usage_shares()
            assert sv.vo_queue_lengths() == se.vo_queue_lengths()

    def test_probe_traces_bit_identical(self):
        traces = []
        for e in ("vector", "event"):
            g = GridSimulator(multi_vo_config(e), seed=23)
            g.warm_up(3600.0)
            traces.append(
                ProbeExperiment(g, n_slots=8, timeout=4000.0).run(40_000.0)
            )
        tv, te = traces
        assert len(tv) > 50
        np.testing.assert_array_equal(tv.submit_times, te.submit_times)
        np.testing.assert_array_equal(tv.latencies, te.latencies)
        np.testing.assert_array_equal(tv.status_codes, te.status_codes)


class TestWorkConservation:
    """No idle core may coexist with a waiting (arrived) job."""

    @pytest.mark.parametrize("engine", ["event", "vector"])
    @pytest.mark.parametrize("util", [0.7, 1.2], ids=["busy", "saturated"])
    def test_no_idle_core_with_waiting_work(self, engine, util):
        g = GridSimulator(multi_vo_config(engine, util=util), seed=41)
        for _ in range(24):
            g.run_until(g.now + 3600.0)
            for site in g.sites:
                q = site.queue_length
                free = site.n_cores - site.busy_cores
                assert q == 0 or free == 0, (
                    f"{site.name}: {q} waiting with {free} idle cores"
                )

    def test_saturated_throughput_matches_capacity(self):
        """A saturated fair-share site completes work at full capacity."""
        sim = Simulator()
        site = FairShareVectorComputingElement(
            "s", 4, sim, vo_shares=SHARES3
        )
        rng = np.random.default_rng(3)
        n = 4000
        arrivals = np.cumsum(rng.exponential(10.0, size=n))  # demand ~10x cap
        runtimes = rng.exponential(400.0, size=n)
        vos = rng.integers(0, 3, size=n)
        site.feed_background(
            arrivals.tolist(), runtimes.tolist(), vos.tolist()
        )
        horizon = 100_000.0
        sim.run_until(horizon)
        assert site.busy_cores == 4
        # completed work ~ cores * time / mean_runtime (within 15%)
        expected = 4 * horizon / 400.0
        assert site.jobs_completed == pytest.approx(expected, rel=0.15)


class TestShareConvergence:
    """Under saturation, decayed usage fractions converge to the shares."""

    @pytest.mark.parametrize("engine", ["event", "vector"])
    def test_usage_tracks_shares_under_saturation(self, engine):
        """Equal demand, 70/30 entitlement: FIFO would realise 50/50;
        fair-share must realise the allocation."""
        cfg = GridConfig(
            sites=(
                SiteConfig(
                    "s",
                    16,
                    utilization=1.45,  # each VO demands ~0.72 of capacity
                    runtime_median=900.0,
                    vo_shares=(("big", 0.7), ("small", 0.3)),
                    vo_traffic=(("big", 0.5), ("small", 0.5)),
                ),
            ),
            faults=FaultModel(),
            site_engine=engine,
        )
        g = GridSimulator(cfg, seed=7)
        g.run_until(14 * 86_400.0)
        shares = g.sites[0].usage_shares()
        assert shares["big"] == pytest.approx(0.7, abs=0.05)
        assert shares["small"] == pytest.approx(0.3, abs=0.05)

    @pytest.mark.parametrize("engine", ["event", "vector"])
    def test_demand_limited_vo_gets_its_demand(self, engine):
        """A VO demanding less than its share is served in full; the
        excess entitlement is redistributed (work conservation)."""
        cfg = GridConfig(
            sites=(
                SiteConfig(
                    "s",
                    16,
                    utilization=1.25,
                    runtime_median=900.0,
                    vo_shares=SHARES3,  # biomed entitled to 0.5 ...
                    # ... but all three VOs demand ~0.417 of capacity
                    vo_traffic=(("biomed", 1.0), ("atlas", 1.0), ("cms", 1.0)),
                ),
            ),
            faults=FaultModel(),
            site_engine=engine,
        )
        g = GridSimulator(cfg, seed=7)
        g.run_until(14 * 86_400.0)
        shares = g.sites[0].usage_shares()
        # biomed saturates at its demand (~0.417), not its 0.5 share
        assert shares["biomed"] == pytest.approx(0.417, abs=0.05)
        # the others split the ceded capacity above their entitlements
        assert shares["atlas"] > 0.3 - 0.05
        assert shares["cms"] > 0.2

    @pytest.mark.parametrize("engine", ["event", "vector"])
    def test_single_entry_traffic_mix_is_honoured(self, engine):
        """All background traffic from one named VO — not silently
        re-attributed to the default VO 0."""
        cfg = GridConfig(
            sites=(
                SiteConfig(
                    "s",
                    8,
                    utilization=0.9,
                    runtime_median=900.0,
                    vo_shares=SHARES3,
                    vo_traffic=(("cms", 1.0),),
                ),
            ),
            faults=FaultModel(),
            site_engine=engine,
        )
        g = GridSimulator(cfg, seed=11)
        g.warm_up(12 * 3600.0)
        shares = g.sites[0].usage_shares()
        assert shares["cms"] == pytest.approx(1.0)
        assert shares["biomed"] == 0.0

    def test_idle_vo_cedes_capacity(self):
        """A VO with no demand lets others consume its share (work
        conservation beats entitlement)."""
        sim = Simulator()
        site = FairShareVectorComputingElement(
            "s", 4, sim, vo_shares=(("quiet", 0.8), ("busy", 0.2))
        )
        rng = np.random.default_rng(5)
        n = 800
        arrivals = np.cumsum(rng.exponential(20.0, size=n))
        runtimes = rng.exponential(300.0, size=n)
        site.feed_background(
            arrivals.tolist(), runtimes.tolist(), [1] * n  # all 'busy'
        )
        sim.run_until(30_000.0)
        assert site.busy_cores == 4
        assert site.usage_shares()["busy"] == pytest.approx(1.0)


class TestGridConfigValidation:
    def test_duplicate_site_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate site name"):
            GridConfig(sites=(SiteConfig("a", 8), SiteConfig("a", 4)))

    def test_nonpositive_cores_rejected(self):
        with pytest.raises(ValueError, match=">= 1 core"):
            GridConfig(sites=(SiteConfig("a", 0),))
        with pytest.raises(ValueError, match=">= 1 core"):
            GridConfig(sites=(SiteConfig("a", -3),))

    def test_duplicate_vo_rejected(self):
        with pytest.raises(ValueError, match="duplicate VO"):
            GridConfig(
                sites=(SiteConfig("a", 8, vo_shares=(("x", 1.0), ("x", 1.0))),)
            )

    def test_traffic_without_shares_rejected(self):
        with pytest.raises(ValueError, match="vo_traffic without vo_shares"):
            GridConfig(sites=(SiteConfig("a", 8, vo_traffic=(("x", 1.0),)),))

    def test_traffic_naming_unknown_vo_rejected(self):
        with pytest.raises(ValueError, match="absent from vo_shares"):
            GridConfig(
                sites=(
                    SiteConfig(
                        "a",
                        8,
                        vo_shares=(("x", 0.5), ("y", 0.5)),
                        vo_traffic=(("z", 1.0),),
                    ),
                )
            )

    def test_bad_halflife_rejected(self):
        with pytest.raises(ValueError, match="fairshare_halflife"):
            GridConfig(sites=(SiteConfig("a", 8),), fairshare_halflife=0.0)
