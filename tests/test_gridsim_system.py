"""System-level tests: full grid, probe campaigns, strategy executors."""

import numpy as np
import pytest

from repro.core.strategies import (
    DelayedResubmission,
    MultipleSubmission,
    SingleResubmission,
)
from repro.gridsim import (
    FaultModel,
    GridConfig,
    GridSimulator,
    ProbeExperiment,
    SiteConfig,
    default_grid_config,
    run_strategy_on_grid,
)
from repro.gridsim.jobs import Job, JobState


def small_config(**kw) -> GridConfig:
    """A light grid for fast tests."""
    defaults = dict(
        sites=(
            SiteConfig("a", 8, utilization=0.8, runtime_median=600.0),
            SiteConfig("b", 16, utilization=0.8, runtime_median=600.0),
            SiteConfig("c", 4, utilization=0.9, runtime_median=900.0),
        ),
        matchmaking_median=30.0,
        faults=FaultModel(p_lost=0.02, p_stuck=0.02),
    )
    defaults.update(kw)
    return GridConfig(**defaults)


@pytest.fixture()
def grid():
    g = GridSimulator(small_config(), seed=3)
    g.warm_up(3600.0)
    return g


class TestGridSimulator:
    def test_default_config_shape(self):
        cfg = default_grid_config(n_sites=5, seed=1)
        assert len(cfg.sites) == 5
        assert all(8 <= s.n_cores <= 128 for s in cfg.sites)
        assert cfg.faults.rho > 0.0

    def test_config_requires_sites(self):
        with pytest.raises(ValueError):
            GridConfig(sites=())

    def test_warm_up_builds_load(self, grid):
        assert grid.utilization() > 0.3
        assert grid.now == 3600.0

    def test_deterministic_given_seed(self):
        a = GridSimulator(small_config(), seed=11)
        b = GridSimulator(small_config(), seed=11)
        a.warm_up(7200.0)
        b.warm_up(7200.0)
        assert a.total_queue_length() == b.total_queue_length()
        assert a.sim.events_processed == b.sim.events_processed

    def test_submit_and_start_callback(self, grid):
        started = []
        job = Job(runtime=10.0, tag="t")
        grid.submit(job, on_start=started.append)
        grid.run_until(grid.now + 50_000.0)
        if job.state in (JobState.LOST, JobState.STUCK):
            assert started == []
        else:
            assert started == [job]
            assert job.latency > 0.0

    def test_fault_rates_materialise(self):
        cfg = small_config(faults=FaultModel(p_lost=0.2, p_stuck=0.2))
        g = GridSimulator(cfg, seed=5)
        jobs = [Job(runtime=1.0) for _ in range(2000)]
        for j in jobs:
            g.submit(j)
        assert g.jobs_lost / 2000 == pytest.approx(0.2, abs=0.03)
        assert g.jobs_stuck / 2000 == pytest.approx(0.2 * 0.8, abs=0.03)

    def test_cancel_in_every_state(self, grid):
        # matching
        j1 = Job(runtime=10.0)
        grid.submit(j1)
        if j1.state is JobState.MATCHING:
            grid.cancel(j1)
            assert j1.state is JobState.CANCELLED
        # stuck/lost
        j2 = Job(runtime=10.0)
        j2.state = JobState.STUCK
        j2.site = ""
        grid.cancel(j2)
        assert j2.state is JobState.CANCELLED

    def test_utilization_bounded(self, grid):
        assert 0.0 <= grid.utilization() <= 1.0


class TestProbeExperiment:
    def test_probe_trace_structure(self, grid):
        exp = ProbeExperiment(grid, n_slots=5, timeout=4000.0)
        trace = exp.run(40_000.0, name="p")
        assert trace.name == "p"
        assert len(trace) > 10
        assert (np.diff(trace.submit_times) >= 0).all()
        assert trace.submit_times[0] < 40_000.0

    def test_probes_measure_positive_latency(self, grid):
        exp = ProbeExperiment(grid, n_slots=5, timeout=4000.0)
        trace = exp.run(40_000.0)
        ok = trace.successful_latencies
        assert (ok > 0).all()
        assert (ok <= 4000.0).all()

    def test_outliers_recorded(self):
        cfg = small_config(faults=FaultModel(p_lost=0.3, p_stuck=0.0))
        g = GridSimulator(cfg, seed=9)
        g.warm_up(1800.0)
        exp = ProbeExperiment(g, n_slots=10, timeout=1500.0)
        trace = exp.run(60_000.0)
        # lost probes surface as timeouts: rho must be near p_lost
        assert trace.outlier_ratio == pytest.approx(0.3, abs=0.07)

    def test_constant_probe_protocol(self, grid):
        # slots resubmit promptly: the inter-submit gaps per slot equal
        # the measured dwell (latency+runtime, or the timeout — the
        # latter fired from the pooled wheel, so up to one granule late
        # under the batched WMS engine)
        exp = ProbeExperiment(grid, n_slots=1, timeout=2000.0)
        trace = exp.run(30_000.0)
        gaps = np.diff(trace.submit_times)
        finite = np.isfinite(trace.latencies)[:-1]
        dwell = np.where(
            np.isfinite(trace.latencies), trace.latencies + 1.0, 2000.0
        )[:-1]
        np.testing.assert_allclose(gaps[finite], dwell[finite], rtol=1e-9)
        granule = grid.sim.pooled_granularity
        assert np.all(gaps[~finite] >= dwell[~finite] - 1e-9)
        assert np.all(gaps[~finite] <= dwell[~finite] + granule + 1e-9)

    def test_validation(self, grid):
        with pytest.raises(ValueError):
            ProbeExperiment(grid, n_slots=0)
        exp = ProbeExperiment(grid, n_slots=1)
        with pytest.raises(ValueError):
            exp.run(0.0)

    def test_feeds_latency_model_pipeline(self, grid):
        from repro.core import optimize_single
        from repro.util.grids import TimeGrid

        exp = ProbeExperiment(grid, n_slots=8, timeout=4000.0)
        trace = exp.run(50_000.0)
        model = trace.to_latency_model().on_grid(TimeGrid(t_max=4000.0, dt=2.0))
        opt = optimize_single(model)
        assert 0 < opt.t_inf <= 4000.0
        assert np.isfinite(opt.e_j)


class TestStrategyExecutors:
    @pytest.mark.parametrize(
        "strategy",
        [
            SingleResubmission(t_inf=2000.0),
            MultipleSubmission(b=3, t_inf=2000.0),
            DelayedResubmission(t0=1200.0, t_inf=2000.0),
        ],
        ids=["single", "multiple", "delayed"],
    )
    def test_tasks_complete(self, strategy):
        g = GridSimulator(small_config(), seed=21)
        g.warm_up(3600.0)
        out = run_strategy_on_grid(g, strategy, 40, task_interval=200.0, runtime=60.0)
        assert out.gave_up == 0
        assert out.j.size == 40
        assert (out.j > 0).all()
        assert (out.jobs_submitted >= 1).all()

    def test_multiple_uses_b_jobs_per_round(self):
        g = GridSimulator(small_config(), seed=22)
        g.warm_up(3600.0)
        out = run_strategy_on_grid(
            g, MultipleSubmission(b=4, t_inf=3000.0), 30, task_interval=200.0
        )
        assert (out.jobs_submitted % 4 == 0).all()

    def test_multiple_beats_single_on_same_grid(self):
        j_means = {}
        for name, strat in {
            "single": SingleResubmission(t_inf=2500.0),
            "multi": MultipleSubmission(b=4, t_inf=2500.0),
        }.items():
            g = GridSimulator(small_config(), seed=33)
            g.warm_up(3600.0)
            out = run_strategy_on_grid(g, strat, 60, task_interval=300.0, runtime=60.0)
            j_means[name] = out.mean_j
        assert j_means["multi"] < j_means["single"]

    def test_delayed_uses_fewer_jobs_than_multiple(self):
        outs = {}
        for name, strat in {
            "multi": MultipleSubmission(b=3, t_inf=2000.0),
            "delayed": DelayedResubmission(t0=1500.0, t_inf=2500.0),
        }.items():
            g = GridSimulator(small_config(), seed=44)
            g.warm_up(3600.0)
            outs[name] = run_strategy_on_grid(
                g, strat, 50, task_interval=300.0, runtime=60.0
            )
        assert outs["delayed"].mean_jobs < outs["multi"].mean_jobs

    def test_unsupported_strategy_type(self):
        g = GridSimulator(small_config(), seed=1)

        class Fake:
            pass

        with pytest.raises(TypeError, match="unsupported"):
            run_strategy_on_grid(g, Fake(), 1)

    def test_validation(self):
        g = GridSimulator(small_config(), seed=1)
        with pytest.raises(ValueError):
            run_strategy_on_grid(g, SingleResubmission(t_inf=100.0), 0)


class TestProbeExperimentReentrancy:
    def test_second_run_starts_from_clean_state(self, grid):
        exp = ProbeExperiment(grid, n_slots=4, timeout=2000.0)
        first = exp.run(20_000.0)
        second = exp.run(20_000.0)
        # the second campaign must not inherit the first one's records
        assert len(second) < 1.5 * len(first)
        assert second.submit_times[0] >= 0.0
        assert second.submit_times[-1] <= 20_000.0
        # both campaigns alone satisfy the trace invariants
        for tr in (first, second):
            assert np.all(np.diff(tr.submit_times) >= 0.0)


class TestEventDrivenStrategyRuns:
    def test_clock_stops_at_last_completion(self, grid):
        before = grid.now
        out = run_strategy_on_grid(
            grid,
            SingleResubmission(t_inf=4000.0),
            10,
            task_interval=60.0,
            runtime=120.0,
            horizon=200_000.0,
        )
        assert out.gave_up == 0
        # event-driven finish: the clock did not burn the whole horizon
        assert grid.now < before + 100_000.0

    def test_gave_up_partial_jobs_recorded(self):
        # one saturated single-core site with no faults: the first task
        # hogs the core for 10^4 s, later tasks queue behind it and the
        # horizon cuts the last ones off mid-flight
        cfg = GridConfig(
            sites=(SiteConfig("solo", 1, utilization=0.0001),),
            matchmaking_median=30.0,
            matchmaking_sigma=0.1,
            ranking_noise=0.0,
            faults=FaultModel(),
        )
        g = GridSimulator(cfg, seed=11)
        out = run_strategy_on_grid(
            g,
            SingleResubmission(t_inf=100_000.0),
            4,
            task_interval=10.0,
            runtime=9_000.0,
            horizon=20_000.0,
        )
        assert out.gave_up >= 1
        assert out.j.size + out.gave_up == 4
        # the gave-up stragglers' partial submission counts ride along
        assert out.jobs_submitted.size == 4
        assert np.all(out.jobs_submitted[out.j.size:] >= 1)

    def test_submit_many_matches_submit_loop_on_oracle(self):
        import dataclasses

        cfg = dataclasses.replace(small_config(), wms_engine="event")
        a = GridSimulator(cfg, seed=29)
        b = GridSimulator(cfg, seed=29)
        for g in (a, b):
            g.warm_up(3600.0)
        jobs_a = [Job(runtime=100.0) for _ in range(5)]
        for j in jobs_a:
            a.submit(j)
        jobs_b = [Job(runtime=100.0) for _ in range(5)]
        b.submit_many(jobs_b)
        for g in (a, b):
            g.run_until(g.now + 5_000.0)
        for ja, jb in zip(jobs_a, jobs_b):
            assert ja.state == jb.state
            assert ja.site == jb.site
            assert (
                np.isnan(ja.queue_time)
                and np.isnan(jb.queue_time)
                or ja.queue_time == jb.queue_time
            )
