"""Tests for the time-grid and integration primitives."""

import numpy as np
import pytest

from repro.util.grids import TimeGrid, cumulative_trapezoid, trapezoid


class TestCumulativeTrapezoid:
    def test_constant_integrand(self):
        y = np.ones(11)
        out = cumulative_trapezoid(y, dx=0.5)
        assert out[0] == 0.0
        np.testing.assert_allclose(out, np.arange(11) * 0.5)

    def test_linear_integrand(self):
        x = np.linspace(0, 2, 201)
        out = cumulative_trapezoid(x, dx=x[1] - x[0])
        np.testing.assert_allclose(out, x**2 / 2, atol=1e-4)

    def test_matches_scipy(self):
        from scipy.integrate import cumulative_trapezoid as scipy_ct

        rng = np.random.default_rng(0)
        y = rng.random(257)
        ours = cumulative_trapezoid(y, dx=0.37)
        theirs = scipy_ct(y, dx=0.37, initial=0.0)
        np.testing.assert_allclose(ours, theirs, rtol=1e-12)

    def test_multidimensional_last_axis(self):
        y = np.ones((3, 5))
        out = cumulative_trapezoid(y, dx=1.0)
        assert out.shape == (3, 5)
        np.testing.assert_allclose(out[1], np.arange(5.0))

    def test_trapezoid_total(self):
        x = np.linspace(0, np.pi, 1001)
        total = trapezoid(np.sin(x), dx=x[1] - x[0])
        assert total == pytest.approx(2.0, abs=1e-5)

    def test_trapezoid_degenerate(self):
        assert trapezoid(np.array([3.0]), dx=1.0) == 0.0


class TestTimeGrid:
    def test_default_matches_paper_protocol(self):
        grid = TimeGrid()
        assert grid.t_max == 10_000.0
        assert grid.dt == 1.0
        assert grid.n == 10_001

    def test_times_endpoints(self):
        grid = TimeGrid(t_max=100.0, dt=2.5)
        t = grid.times
        assert t[0] == 0.0
        assert t[-1] == pytest.approx(100.0)
        assert len(t) == grid.n

    def test_index_round_trip(self):
        grid = TimeGrid(t_max=1000.0, dt=2.0)
        for t in (0.0, 2.0, 500.0, 1000.0):
            assert grid.time_of(grid.index_of(t)) == pytest.approx(t)

    def test_index_of_nearest(self):
        grid = TimeGrid(t_max=100.0, dt=2.0)
        assert grid.index_of(3.1) == 2  # nearest grid point is 4.0? -> 3.1/2 = 1.55 -> 2
        assert grid.time_of(grid.index_of(3.1)) == pytest.approx(4.0)

    def test_index_out_of_range(self):
        grid = TimeGrid(t_max=100.0, dt=1.0)
        with pytest.raises(ValueError, match="outside grid"):
            grid.index_of(200.0)
        with pytest.raises(ValueError, match="outside grid"):
            grid.index_of(-5.0)

    def test_time_of_out_of_range(self):
        grid = TimeGrid(t_max=100.0, dt=1.0)
        with pytest.raises(ValueError, match="outside grid"):
            grid.time_of(101)
        with pytest.raises(ValueError, match="outside grid"):
            grid.time_of(-1)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            TimeGrid(t_max=-1.0)
        with pytest.raises(ValueError):
            TimeGrid(dt=0.0)
        with pytest.raises(ValueError, match="at least one grid step"):
            TimeGrid(t_max=0.5, dt=1.0)

    def test_window(self):
        grid = TimeGrid(t_max=10.0, dt=1.0)
        np.testing.assert_array_equal(grid.window(2.0, 5.0), [2, 3, 4, 5])
        np.testing.assert_array_equal(grid.window(2.5, 4.5), [3, 4])
        assert grid.window(5.2, 5.4).size == 0

    def test_window_clamps_to_grid(self):
        grid = TimeGrid(t_max=10.0, dt=1.0)
        np.testing.assert_array_equal(grid.window(-5.0, 1.0), [0, 1])
        np.testing.assert_array_equal(grid.window(9.0, 99.0), [9, 10])

    def test_cumint_shape_check(self):
        grid = TimeGrid(t_max=10.0, dt=1.0)
        with pytest.raises(ValueError, match="grid has"):
            grid.cumint(np.ones(5))

    def test_cumint_value(self):
        grid = TimeGrid(t_max=10.0, dt=1.0)
        out = grid.cumint(np.ones(grid.n))
        np.testing.assert_allclose(out, grid.times)

    def test_integrate(self):
        grid = TimeGrid(t_max=1.0, dt=0.001)
        assert grid.integrate(grid.times) == pytest.approx(0.5, abs=1e-6)

    def test_derivative_of_linear(self):
        grid = TimeGrid(t_max=10.0, dt=0.5)
        d = grid.derivative(3.0 * grid.times)
        np.testing.assert_allclose(d, 3.0)

    def test_derivative_shape_check(self):
        grid = TimeGrid(t_max=10.0, dt=1.0)
        with pytest.raises(ValueError, match="grid has"):
            grid.derivative(np.ones(4))

    def test_with_resolution(self):
        grid = TimeGrid(t_max=100.0, dt=1.0)
        fine = grid.with_resolution(0.5)
        assert fine.t_max == 100.0
        assert fine.n == 201

    def test_frozen(self):
        grid = TimeGrid()
        with pytest.raises(AttributeError):
            grid.dt = 5.0
