"""End-to-end integration tests across the whole stack."""

import io

import numpy as np
import pytest

import repro
from repro.core.burst_selection import smallest_b_for_expectation
from repro.gridsim import (
    GridMonitor,
    GridSimulator,
    OutageProcess,
    ProbeExperiment,
    default_grid_config,
)
from repro.traces.gwf import gwf_roundtrip_string, read_gwf
from repro.util.grids import TimeGrid


class TestArchiveToPlan:
    """GWF file -> model -> planner recommendation, the user's full path."""

    def test_gwf_to_recommendation(self):
        trace = repro.synthesize_week("2007-52", seed=3)
        gwf_text = gwf_roundtrip_string(trace)
        restored = read_gwf(io.StringIO(gwf_text), name="from-archive")
        plan = repro.plan_submissions(
            restored, max_parallel=2.5, t0_window=(100.0, 1500.0)
        )
        assert plan.best.e_j > 0
        assert plan.best.n_parallel <= 2.5

    def test_top_level_api_surface(self):
        # everything advertised in __all__ resolves
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestTraceStatisticsConsistency:
    """The three statistical layers must agree: trace, model, strategies."""

    def test_table1_statistics_flow_through(self):
        trace = repro.synthesize_week("2006-IX", seed=21)
        model = trace.to_latency_model()
        # model rho equals trace ratio
        assert model.rho == pytest.approx(trace.outlier_ratio)
        # trace mean equals model distribution mean
        assert model.distribution.mean() == pytest.approx(
            trace.mean_latency(), rel=1e-9
        )
        gm = model.on_grid(TimeGrid(t_max=10_000.0, dt=2.0))
        # F saturates at 1 - rho on the grid
        assert gm.F[-1] == pytest.approx(1.0 - model.rho, abs=0.01)

    def test_report_and_plan_agree_on_heavy_tail(self):
        trace = repro.synthesize_week("2006-IX", seed=21)
        report = repro.characterize(trace, fit_families=("lognormal",))
        assert report.is_heavy_tailed
        gm = trace.to_latency_model().on_grid(TimeGrid(t_max=10_000.0, dt=2.0))
        # heavy tail => resubmission can cut E_J well below infinite patience
        plan = repro.plan_submissions(
            gm, max_parallel=5.0, t0_window=(100.0, 1500.0)
        )
        bursts = [c for c in plan.candidates if "multiple" in c.name]
        singles = [c for c in plan.candidates if c.name == "single"]
        assert bursts and singles
        assert min(b.e_j for b in bursts) < singles[0].e_j


class TestSimulatedGridPipeline:
    """DES grid -> probes -> model -> burst sizing -> verification."""

    @pytest.fixture(scope="class")
    def probe_model(self):
        grid = GridSimulator(default_grid_config(n_sites=6, seed=2), seed=31)
        grid.warm_up(6 * 3600.0)
        trace = ProbeExperiment(grid, n_slots=10, timeout=5000.0).run(86_400.0)
        return trace, trace.to_latency_model().on_grid(
            TimeGrid(t_max=5000.0, dt=1.0)
        )

    def test_probe_trace_is_characterizable(self, probe_model):
        trace, _ = probe_model
        report = repro.characterize(trace, fit_families=("lognormal", "gamma"))
        assert report.n_jobs == len(trace)
        assert report.percentiles[95.0] > report.percentiles[50.0]

    def test_burst_sizing_on_simulated_grid(self, probe_model):
        _, gm = probe_model
        from repro.core.optimize import optimize_single

        single = optimize_single(gm)
        b, e_j = smallest_b_for_expectation(gm, 0.7 * single.e_j, b_max=16)
        assert e_j <= 0.7 * single.e_j
        assert 2 <= b <= 16

    def test_monitored_campaign_with_outages(self):
        grid = GridSimulator(default_grid_config(n_sites=4, seed=5), seed=41)
        rng = np.random.default_rng(6)
        for site in grid.sites:
            OutageProcess(
                site, grid.sim, rng,
                mean_uptime=40_000.0, mean_downtime=8_000.0,
            ).start()
        monitor = GridMonitor(grid, period=1800.0)
        monitor.start()
        grid.warm_up(3600.0)
        trace = ProbeExperiment(grid, n_slots=8, timeout=5000.0).run(86_400.0)
        assert len(trace) > 20
        assert len(monitor) > 10
        assert monitor.peak_queue() >= 0
        # the trace still feeds the analytic pipeline
        gm = trace.to_latency_model().on_grid(TimeGrid(t_max=5000.0, dt=2.0))
        plan = repro.plan_submissions(
            gm, max_parallel=3.0, t0_window=(60.0, 1500.0)
        )
        assert plan.candidates


class TestCrossValidationTriangle:
    """Closed forms, Monte-Carlo replay and DES must tell one story."""

    def test_three_way_agreement_on_ordering(self):
        # on any model: E_J(single) > E_J(delayed) > E_J(burst b=3)
        trace = repro.synthesize_week("2007-53", seed=8)
        gm = trace.to_latency_model().on_grid(TimeGrid(t_max=10_000.0, dt=2.0))
        from repro.core.optimize import (
            optimize_delayed,
            optimize_multiple,
            optimize_single,
        )
        from repro.montecarlo import (
            simulate_delayed,
            simulate_multiple,
            simulate_single,
        )

        s = optimize_single(gm)
        d = optimize_delayed(gm, t0_min=100.0, t0_max=1500.0)
        m = optimize_multiple(gm, 3)
        assert m.e_j < d.e_j < s.e_j

        lm = gm.model
        mc_s = simulate_single(lm, s.t_inf, 8000, rng=1).mean_j
        mc_d = simulate_delayed(lm, d.t0, d.t_inf, 8000, rng=2).mean_j
        mc_m = simulate_multiple(lm, 3, m.t_inf, 8000, rng=3).mean_j
        assert mc_m < mc_d < mc_s
