"""Tests for bootstrap confidence intervals on trace-fitted optima."""

import numpy as np
import pytest

from repro.analysis.bootstrap import bootstrap_single_optimum
from repro.traces.paper import synthesize_week
from repro.util.grids import TimeGrid


@pytest.fixture(scope="module")
def boot():
    trace = synthesize_week("2007-51", seed=17, n_jobs=400)
    return bootstrap_single_optimum(
        trace, n_boot=60, grid=TimeGrid(t_max=10_000.0, dt=8.0), rng=5
    )


class TestBootstrap:
    def test_point_estimate_inside_interval(self, boot):
        lo, hi = boot.e_j_interval(0.95)
        assert lo <= boot.e_j_point <= hi

    def test_interval_widens_with_level(self, boot):
        lo90, hi90 = boot.e_j_interval(0.90)
        lo99, hi99 = boot.e_j_interval(0.99)
        assert lo99 <= lo90 and hi99 >= hi90

    def test_sampling_noise_visible_on_small_trace(self, boot):
        # 400 probes of a heavy-tailed law: E_J must carry real uncertainty
        assert boot.e_j_std > 1.0
        lo, hi = boot.e_j_interval()
        assert hi - lo > 5.0

    def test_larger_trace_tightens_interval(self):
        grid = TimeGrid(t_max=10_000.0, dt=8.0)
        small = bootstrap_single_optimum(
            synthesize_week("2007-51", seed=17, n_jobs=200),
            n_boot=60, grid=grid, rng=5,
        )
        large = bootstrap_single_optimum(
            synthesize_week("2007-51", seed=17, n_jobs=1600),
            n_boot=60, grid=grid, rng=5,
        )
        assert large.e_j_std < small.e_j_std

    def test_summary_mentions_both_quantities(self, boot):
        text = boot.summary()
        assert "E_J" in text and "t_inf" in text and "CI" in text

    def test_deterministic_given_seed(self):
        trace = synthesize_week("2007-52", seed=3, n_jobs=200)
        grid = TimeGrid(t_max=10_000.0, dt=8.0)
        a = bootstrap_single_optimum(trace, n_boot=20, grid=grid, rng=9)
        b = bootstrap_single_optimum(trace, n_boot=20, grid=grid, rng=9)
        np.testing.assert_array_equal(a.e_j_samples, b.e_j_samples)

    def test_validation(self, boot):
        trace = synthesize_week("2007-52", seed=3, n_jobs=100)
        with pytest.raises(ValueError):
            bootstrap_single_optimum(trace, n_boot=5)
        with pytest.raises(ValueError):
            boot.e_j_interval(0.0)
        with pytest.raises(ValueError):
            boot.e_j_interval(1.0)
