"""Tests for stability and transfer analyses (Tables 5–6 machinery)."""

import pytest

from repro.analysis import stability_analysis, transfer_matrix
from repro.core.optimize import optimize_delayed_cost, optimize_single


@pytest.fixture(scope="module")
def setup(request):
    gridded = request.getfixturevalue("gridded")
    single = optimize_single(gridded)
    opt = optimize_delayed_cost(gridded, single.e_j, t0_min=150.0, t0_max=1500.0)
    return gridded, single, opt


class TestStability:
    def test_center_cost_matches_optimum(self, setup):
        gridded, single, opt = setup
        report = stability_analysis(
            gridded, opt.t0, opt.t_inf, single.e_j, radius=3
        )
        assert report.cost_center == pytest.approx(opt.cost, rel=1e-9)

    def test_max_at_least_center(self, setup):
        gridded, single, opt = setup
        report = stability_analysis(gridded, opt.t0, opt.t_inf, single.e_j)
        assert report.cost_max >= report.cost_center
        assert report.relative_diff >= 0.0

    def test_radius_zero_only_center(self, setup):
        gridded, single, opt = setup
        report = stability_analysis(
            gridded, opt.t0, opt.t_inf, single.e_j, radius=0
        )
        assert report.cost_max == report.cost_center
        assert report.n_evaluated == 1

    def test_larger_radius_no_better(self, setup):
        gridded, single, opt = setup
        small = stability_analysis(gridded, opt.t0, opt.t_inf, single.e_j, radius=2)
        large = stability_analysis(gridded, opt.t0, opt.t_inf, single.e_j, radius=6)
        assert large.cost_max >= small.cost_max - 1e-12
        assert large.n_evaluated > small.n_evaluated

    def test_boundary_points_skipped(self, setup):
        gridded, single, _ = setup
        # t_inf = 2*t0 exactly: half the box is infeasible but it still works
        report = stability_analysis(gridded, 400.0, 800.0, single.e_j, radius=4)
        assert report.n_evaluated < 9 * 9

    def test_validation(self, setup):
        gridded, single, opt = setup
        with pytest.raises(ValueError):
            stability_analysis(gridded, opt.t0, opt.t_inf, single.e_j, radius=-1)
        with pytest.raises(ValueError):
            stability_analysis(gridded, opt.t0, opt.t_inf, 0.0)
        with pytest.raises(ValueError, match="infeasible"):
            stability_analysis(gridded, 400.0, 900.0, single.e_j)


class TestTransfer:
    def test_own_parameters_are_best_or_close(self, setup):
        gridded, single, opt = setup
        models = {"w": gridded}
        singles = {"w": single.e_j}
        cells = transfer_matrix(
            models,
            {"w": (opt.t0, opt.t_inf), "other": (opt.t0 + 100.0, opt.t0 + 150.0)},
            singles,
        )
        by_source = {c.source: c for c in cells}
        assert by_source["w"].cost <= by_source["other"].cost + 1e-9

    def test_matrix_covers_all_pairs(self, setup):
        gridded, single, opt = setup
        models = {"a": gridded, "b": gridded}
        singles = {"a": single.e_j, "b": single.e_j}
        params = {"a": (opt.t0, opt.t_inf), "b": (opt.t0, opt.t_inf)}
        cells = transfer_matrix(models, params, singles)
        assert len(cells) == 4
        assert {(c.target, c.source) for c in cells} == {
            ("a", "a"), ("a", "b"), ("b", "a"), ("b", "b"),
        }

    def test_infeasible_params_skipped(self, setup):
        gridded, single, opt = setup
        models = {"w": gridded}
        singles = {"w": single.e_j}
        cells = transfer_matrix(
            models,
            {"good": (opt.t0, opt.t_inf), "bad": (100.0, 900.0)},
            singles,
        )
        assert {c.source for c in cells} == {"good"}

    def test_all_infeasible_raises(self, setup):
        gridded, single, _ = setup
        with pytest.raises(ValueError, match="no feasible"):
            transfer_matrix(
                {"w": gridded}, {"bad": (100.0, 900.0)}, {"w": single.e_j}
            )

    def test_empty_params_raises(self, setup):
        gridded, single, _ = setup
        with pytest.raises(ValueError, match="at least one"):
            transfer_matrix({"w": gridded}, {}, {"w": single.e_j})

    def test_targets_subset(self, setup):
        gridded, single, opt = setup
        models = {"a": gridded, "b": gridded}
        singles = {"a": single.e_j, "b": single.e_j}
        cells = transfer_matrix(
            models, {"a": (opt.t0, opt.t_inf)}, singles, targets=["b"]
        )
        assert {c.target for c in cells} == {"b"}
