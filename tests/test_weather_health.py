"""Grid weather and the site health machine: validation, law equivalence.

Three subsystems under test.  **Weather** (storms, black holes): the
deterministic black-hole path must be bit-identical across site engines
(it consumes no randomness by design), storms without kill draws too.
**Health** (EWMA bans, probe re-admission): the operator loop is
deterministic given the observation stream, and its ban penalties reach
brokers only at snapshot-refresh time — staleness this suite measures
explicitly on a federated grid.  **Self-healing** (resubmission agent):
rescues failed-and-missing tasks under a retry budget, composable with
the user-side strategies.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np
import pytest

from repro.core.strategies import SingleResubmission
from repro.gridsim import (
    BlackHoleConfig,
    BrokerConfig,
    ComputingElement,
    FaultModel,
    GridConfig,
    GridMonitor,
    GridSimulator,
    HealthConfig,
    HealthState,
    Job,
    JobState,
    OutageConfig,
    ProbeExperiment,
    ResubmissionAgent,
    ResubmitConfig,
    SiteConfig,
    Simulator,
    StormConfig,
    StormProcess,
    VectorComputingElement,
    WeatherConfig,
    run_strategy_on_grid,
)
from repro.population import FleetSpec, PopulationSpec, run_population


def config(util: float = 0.85, **kw) -> GridConfig:
    defaults = dict(
        sites=(
            SiteConfig("a", 8, utilization=util, runtime_median=600.0),
            SiteConfig("b", 16, utilization=util, runtime_median=900.0),
            SiteConfig("c", 4, utilization=min(util + 0.05, 1.3), runtime_median=900.0),
        ),
        matchmaking_median=30.0,
        faults=FaultModel(p_lost=0.02, p_stuck=0.02),
    )
    defaults.update(kw)
    return GridConfig(**defaults)


def engine_pair(cfg: GridConfig, seed: int) -> tuple[GridSimulator, GridSimulator]:
    """The same grid on the vectorised site engine and the event oracle."""
    return (
        GridSimulator(dataclasses.replace(cfg, site_engine="vector"), seed=seed),
        GridSimulator(dataclasses.replace(cfg, site_engine="event"), seed=seed),
    )


def site_fingerprint(grid: GridSimulator) -> tuple:
    """Per-site observable state (engine-independent fields only)."""
    return (
        grid.now,
        tuple(s.queue_length for s in grid.sites),
        tuple(s.busy_cores for s in grid.sites),
        tuple(s.jobs_started for s in grid.sites),
        tuple(s.jobs_completed for s in grid.sites),
        tuple(s.jobs_killed for s in grid.sites),
        tuple(s.jobs_failed_bh for s in grid.sites),
        tuple(bg.jobs_generated for bg in grid.background),
    )


class TestWeatherValidation:
    """Bad weather configs die at construction with a named parameter."""

    def test_outage_config(self):
        with pytest.raises(ValueError, match="mean_uptime"):
            OutageConfig(mean_uptime=0.0)
        with pytest.raises(ValueError, match="mean_downtime"):
            OutageConfig(mean_downtime=-1.0)
        with pytest.raises(ValueError, match="kill_running"):
            OutageConfig(kill_running=1.5)

    def test_storm_config(self):
        with pytest.raises(ValueError, match="mean_interval"):
            StormConfig(mean_interval=0.0)
        with pytest.raises(ValueError, match="subset_size"):
            StormConfig(subset_size=0)
        with pytest.raises(ValueError, match="kill_running"):
            StormConfig(kill_running=-0.1)

    def test_black_hole_config(self):
        with pytest.raises(ValueError, match="non-empty"):
            BlackHoleConfig(site="")
        with pytest.raises(ValueError, match="start"):
            BlackHoleConfig(site="a", start=-1.0)
        with pytest.raises(ValueError, match="duration"):
            BlackHoleConfig(site="a", duration=0.0)
        # an open-ended hole is legal
        assert math.isinf(BlackHoleConfig(site="a").duration)

    def test_weather_config_types(self):
        with pytest.raises(TypeError, match="OutageConfig"):
            WeatherConfig(site_outages=3)
        with pytest.raises(TypeError, match="StormConfig"):
            WeatherConfig(storm=3)
        with pytest.raises(TypeError, match="BlackHoleConfig"):
            WeatherConfig(black_holes=(3,))

    def test_health_config(self):
        with pytest.raises(ValueError, match="alpha"):
            HealthConfig(alpha=0.0)
        with pytest.raises(ValueError, match="ban_threshold"):
            HealthConfig(ban_threshold=1.5)
        with pytest.raises(ValueError, match="recover <= degrade <= ban"):
            HealthConfig(recover_threshold=0.9, degrade_threshold=0.5)
        with pytest.raises(ValueError, match="min_observations"):
            HealthConfig(min_observations=0)
        with pytest.raises(TypeError, match="min_observations"):
            HealthConfig(min_observations=True)
        with pytest.raises(ValueError, match="degraded_penalty"):
            HealthConfig(degraded_penalty=0.5)

    def test_resubmit_config(self):
        with pytest.raises(ValueError, match="period"):
            ResubmitConfig(period=0.0)
        with pytest.raises(ValueError, match="max_retries"):
            ResubmitConfig(max_retries=-1)
        with pytest.raises(ValueError, match="backoff_factor"):
            ResubmitConfig(backoff_factor=0.5)

    def test_grid_config_cross_checks(self):
        with pytest.raises(ValueError, match="exceeds the 3 configured"):
            config(weather=WeatherConfig(storm=StormConfig(subset_size=5)))
        with pytest.raises(ValueError, match="not a configured site"):
            config(
                weather=WeatherConfig(black_holes=(BlackHoleConfig(site="nope"),))
            )
        with pytest.raises(TypeError, match="weather"):
            config(weather=3)
        with pytest.raises(TypeError, match="health"):
            config(health=3)
        with pytest.raises(TypeError, match="resubmit"):
            config(resubmit=3)


class TestHealthMachine:
    """The operator loop on a live grid, driven by explicit observations."""

    def make_grid(self, seed: int = 7, **health_kw) -> GridSimulator:
        kw = dict(
            min_observations=3,
            ban_cooldown=600.0,
            probe_timeout=300.0,
            probe_runtime=5.0,
        )
        kw.update(health_kw)
        return GridSimulator(
            config(util=0.2, health=HealthConfig(**kw)), seed=seed
        )

    def test_warmup_gate_blocks_early_transitions(self):
        grid = self.make_grid()
        health = grid._health
        health.observe_failure("a")
        health.observe_failure("a")
        assert health.state_of("a") is HealthState.OK

    def test_degrade_then_ban_publishes_penalties(self):
        grid = self.make_grid()
        health = grid._health
        site = grid._site_by_name["a"]
        # EWMA after n straight failures is 1 - (1-alpha)^n; with
        # alpha=0.2 it crosses degrade=0.5 at n=4 and ban=0.8 at n=8
        for _ in range(4):
            health.observe_failure("a")
        assert health.state_of("a") is HealthState.DEGRADED
        assert site.health_penalty == HealthConfig().degraded_penalty
        for _ in range(10):
            health.observe_failure("a")
        assert health.state_of("a") is HealthState.BANNED
        assert math.isinf(site.health_penalty)
        assert health.transitions == {"ok->degraded": 1, "degraded->banned": 1}

    def test_degraded_site_recovers_on_successes(self):
        grid = self.make_grid()
        health = grid._health
        for _ in range(4):
            health.observe_failure("b")
        assert health.state_of("b") is HealthState.DEGRADED
        for _ in range(10):
            health.observe_success("b")
        assert health.state_of("b") is HealthState.OK
        assert grid._site_by_name["b"].health_penalty == 1.0

    def test_probe_readmission_on_healthy_site(self):
        grid = self.make_grid()
        health = grid._health
        for _ in range(10):
            health.observe_failure("a")
        assert health.state_of("a") is HealthState.BANNED
        # ride out the cooldown; probes start promptly on the idle site
        grid.run_until(grid.now + 2000.0)
        assert health.state_of("a") is HealthState.OK
        assert grid._site_by_name["a"].health_penalty == 1.0
        assert health.probes_sent == HealthConfig().n_probes
        assert health.transitions["banned->probing"] == 1
        assert health.transitions["probing->ok"] == 1

    def test_black_hole_site_fails_probes_and_stays_contained(self):
        grid = self.make_grid()
        health = grid._health
        grid._site_by_name["a"].begin_black_hole()
        for _ in range(10):
            health.observe_failure("a")
        # two full cooldown+probe cycles: the hole fails every probe
        grid.run_until(grid.now + 2500.0)
        assert health.state_of("a") in (HealthState.BANNED, HealthState.PROBING)
        assert health.transitions["probing->banned"] >= 1
        assert "probing->ok" not in health.transitions
        assert math.isinf(grid._site_by_name["a"].health_penalty)


class TestBlackHoleSites:
    """Deterministic hole semantics, unit level and across engines."""

    @pytest.mark.parametrize(
        "site_cls", [ComputingElement, VectorComputingElement]
    )
    def test_arrivals_fail_instantly_while_open(self, site_cls):
        sim = Simulator()
        site = site_cls("ce", 2, sim)
        site.begin_black_hole()
        job = Job(runtime=10.0)
        site.enqueue(job)
        assert job.state is JobState.FAILED
        batch = [Job(runtime=10.0) for _ in range(3)]
        assert site.enqueue_many(batch) == 3
        assert all(j.state is JobState.FAILED for j in batch)
        assert site.jobs_failed_bh == 4
        assert site.estimated_wait(600.0) == 0.0  # the attractor

    @pytest.mark.parametrize(
        "site_cls", [ComputingElement, VectorComputingElement]
    )
    def test_flip_fails_queued_and_kills_running(self, site_cls):
        sim = Simulator()
        site = site_cls("ce", 1, sim)
        jobs = [Job(runtime=10_000.0) for _ in range(3)]
        for j in jobs:
            site.enqueue(j)
        sim.run_until(100.0)
        assert jobs[0].state is JobState.RUNNING
        site.begin_black_hole()
        assert jobs[0].state is JobState.FAILED
        assert jobs[1].state is JobState.FAILED
        assert jobs[2].state is JobState.FAILED
        assert site.busy_cores == 0
        assert site.jobs_killed == 1
        assert site.jobs_failed_bh == 2
        site.end_black_hole()
        fresh = Job(runtime=50.0)
        site.enqueue(fresh)
        sim.run_until(sim._now + 1000.0)
        assert fresh.state is JobState.COMPLETED

    def test_failed_jobs_are_cancel_noops(self):
        sim = Simulator()
        site = ComputingElement("ce", 1, sim)
        site.begin_black_hole()
        job = Job(runtime=10.0)
        site.enqueue(job)
        grid = GridSimulator(config(util=0.1), seed=3)
        grid.cancel(job)  # already failed: must not resurrect or raise
        assert job.state is JobState.FAILED

    def test_hole_window_bit_identical_across_site_engines(self):
        weather = WeatherConfig(
            black_holes=(BlackHoleConfig(site="b", start=2000.0, duration=6000.0),)
        )
        traces, fps, reports = [], [], []
        for g in engine_pair(config(weather=weather, health=HealthConfig()), 37):
            g.warm_up(600.0)
            traces.append(
                ProbeExperiment(g, n_slots=6, timeout=5000.0).run(30_000.0)
            )
            fps.append(site_fingerprint(g))
            reports.append(g.weather_report())
        tv, te = traces
        np.testing.assert_array_equal(tv.submit_times, te.submit_times)
        np.testing.assert_array_equal(tv.latencies, te.latencies)
        assert fps[0] == fps[1]
        assert reports[0] == reports[1]
        assert sum(reports[0]["black_hole_failures"].values()) > 0

    def test_fairshare_hole_bit_identical_across_site_engines(self):
        shares = (("atlas", 0.6), ("cms", 0.4))
        cfg = config(
            sites=(
                SiteConfig("a", 8, utilization=0.5, vo_shares=shares),
                SiteConfig("b", 8, utilization=0.5, vo_shares=shares),
            ),
            weather=WeatherConfig(
                black_holes=(BlackHoleConfig(site="a", start=1000.0, duration=4000.0),)
            ),
        )
        outcomes, fps = [], []
        for g in engine_pair(cfg, 11):
            g.warm_up(500.0)
            outcomes.append(
                run_strategy_on_grid(
                    g,
                    SingleResubmission(t_inf=3000.0),
                    20,
                    task_interval=120.0,
                    runtime=60.0,
                )
            )
            fps.append(site_fingerprint(g))
        np.testing.assert_array_equal(outcomes[0].j, outcomes[1].j)
        np.testing.assert_array_equal(
            outcomes[0].jobs_submitted, outcomes[1].jobs_submitted
        )
        assert fps[0] == fps[1]


class TestStorms:
    def test_storm_bit_identical_across_site_engines_without_kills(self):
        weather = WeatherConfig(
            storm=StormConfig(
                mean_interval=5000.0,
                mean_duration=2000.0,
                subset_size=2,
                kill_running=0.0,
            )
        )
        traces, fps, reports = [], [], []
        for g in engine_pair(config(weather=weather), 23):
            g.warm_up(600.0)
            traces.append(
                ProbeExperiment(g, n_slots=6, timeout=5000.0).run(40_000.0)
            )
            fps.append(site_fingerprint(g))
            reports.append(g.weather_report())
        tv, te = traces
        np.testing.assert_array_equal(tv.submit_times, te.submit_times)
        np.testing.assert_array_equal(tv.latencies, te.latencies)
        assert fps[0] == fps[1]
        assert reports[0] == reports[1]
        assert reports[0]["storms_started"] >= 2
        assert reports[0]["outages_started"] >= reports[0]["storms_started"]

    def test_storm_skips_down_sites_and_recovers_subset_together(self):
        sim = Simulator()
        sites = [ComputingElement(f"ce{i}", 2, sim) for i in range(3)]
        sites[0].begin_outage(np.random.default_rng(0), 0.0)
        storm = StormProcess(
            sites,
            sim,
            np.random.default_rng(5),
            StormConfig(
                mean_interval=100.0,
                mean_duration=50.0,
                subset_size=3,
                kill_running=0.0,
            ),
        )
        storm.start()
        sim.run_until(400.0)
        assert storm.storms_started >= 1
        # the manually downed site rode every storm out unaffected: a
        # full-grid storm downs at most the two healthy sites
        assert 2 <= storm.outages_started <= 2 * storm.storms_started
        assert not sites[0].dispatch_enabled
        # each storm recovers its subset together; advance until a
        # storm-free instant shows both healthy sites back up
        deadline = sim._now + 100_000.0
        while sim._now < deadline and not all(
            s.dispatch_enabled for s in sites[1:]
        ):
            sim.run_until(sim._now + 10.0)
        assert all(s.dispatch_enabled for s in sites[1:])

    def test_storm_process_rejects_oversized_subset(self):
        sim = Simulator()
        sites = [ComputingElement("ce", 2, sim)]
        with pytest.raises(ValueError, match="subset_size"):
            StormProcess(
                sites, sim, np.random.default_rng(0), StormConfig(subset_size=2)
            )


class TestSelfHealing:
    def hole_config(self, **kw) -> GridConfig:
        return config(
            util=0.2,
            faults=FaultModel(),
            weather=WeatherConfig(
                black_holes=(BlackHoleConfig(site="b", start=500.0, duration=8000.0),)
            ),
            **kw,
        )

    def test_agent_rescues_hole_victims_faster_than_t_inf(self):
        outcomes = {}
        for healing in (False, True):
            cfg = self.hole_config(
                resubmit=ResubmitConfig(period=120.0, backoff_base=30.0)
                if healing
                else None
            )
            grid = GridSimulator(cfg, seed=31)
            grid.warm_up(400.0)
            outcomes[healing] = run_strategy_on_grid(
                grid,
                SingleResubmission(t_inf=6000.0),
                30,
                task_interval=60.0,
                runtime=60.0,
            )
            if healing:
                report = grid.weather_report()
        assert report["resubmit"]["resubmissions"] > 0
        assert outcomes[True].mean_j < outcomes[False].mean_j

    def test_retry_budget_is_respected(self):
        # a task whose every copy dies instantly: the agent must stop
        # exactly at max_retries even though sweeps keep finding bodies
        sim = Simulator()
        agent = ResubmissionAgent(
            sim, ResubmitConfig(period=100.0, max_retries=2, backoff_base=10.0)
        )

        class DoomedTask:
            done = False
            agent_retries = 0
            copies = 0

            def submit_copy(self):
                self.copies += 1
                dead = Job(runtime=1.0)
                dead.state = JobState.LOST
                agent.watch(self, dead)

        task = DoomedTask()
        first = Job(runtime=1.0)
        first.state = JobState.LOST
        agent.watch(task, first)
        agent.start()
        sim.run_until(10_000.0)
        assert agent.resubmissions == 2
        assert task.copies == 2
        assert agent.detected == 3  # the original and both doomed copies

    def test_agent_stops_watching_finished_tasks(self):
        sim = Simulator()
        agent = ResubmissionAgent(sim, ResubmitConfig(period=100.0))

        class FinishedTask:
            done = True
            agent_retries = 0

            def submit_copy(self):
                raise AssertionError("finished tasks must never be resubmitted")

        dead = Job(runtime=1.0)
        dead.state = JobState.STUCK
        agent.watch(FinishedTask(), dead)
        agent.start()
        sim.run_until(1_000.0)
        assert agent.detected == 0
        assert agent.resubmissions == 0
        assert agent._watch == []

    def test_agent_detects_middleware_faults_on_calm_grid(self):
        cfg = config(
            util=0.2,
            faults=FaultModel(p_lost=0.5, p_stuck=0.0),
            resubmit=ResubmitConfig(period=60.0, backoff_base=10.0),
        )
        grid = GridSimulator(cfg, seed=13)
        out = run_strategy_on_grid(
            grid,
            SingleResubmission(t_inf=50_000.0),
            10,
            task_interval=30.0,
            runtime=30.0,
        )
        report = grid.weather_report()
        assert report["resubmit"]["detected"] > 0
        assert report["resubmit"]["resubmissions"] > 0
        assert out.gave_up == 0


class TestWeatherTelemetry:
    def test_calm_grid_reports_zeros(self):
        grid = GridSimulator(config(util=0.3), seed=2)
        grid.warm_up(1000.0)
        report = grid.weather_report()
        assert report["outages_started"] == 0
        assert report["storms_started"] == 0
        assert set(report["jobs_killed"].values()) == {0}
        assert set(report["black_hole_failures"].values()) == {0}
        assert "health" not in report
        assert "resubmit" not in report

    def test_monitor_samples_cumulative_outages(self):
        cfg = config(
            weather=WeatherConfig(
                site_outages=OutageConfig(
                    mean_uptime=3000.0, mean_downtime=1000.0, kill_running=0.0
                )
            )
        )
        grid = GridSimulator(cfg, seed=3)
        monitor = GridMonitor(grid, period=2000.0)
        monitor.start()
        grid.run_until(40_000.0)
        counts = [s.outages_started for s in monitor.samples]
        assert counts == sorted(counts)
        assert counts[-1] > 0
        assert counts[-1] == grid.weather_report()["outages_started"]

    def test_population_result_carries_weather(self):
        cfg = config(
            util=0.3,
            weather=WeatherConfig(
                storm=StormConfig(
                    mean_interval=4000.0, mean_duration=1000.0, subset_size=2
                )
            ),
        )
        grid = GridSimulator(cfg, seed=9)
        grid.warm_up(500.0)
        spec = PopulationSpec(
            fleets=(
                FleetSpec(
                    vo="atlas",
                    strategy=SingleResubmission(t_inf=4000.0),
                    n_tasks=10,
                    runtime=60.0,
                ),
            ),
            window=3600.0,
        )
        result = run_population(grid, spec, seed=1)
        assert result.weather["storms_started"] >= 0
        assert result.weather == grid.weather_report()


class TestBanPropagationStaleness:
    """Bans travel with load snapshots: owned fast, federated lagged."""

    def fed_config(self, info_lag: float = 900.0) -> GridConfig:
        return config(
            util=0.3,
            health=HealthConfig(min_observations=3, ban_cooldown=1e8),
            brokers=(
                BrokerConfig("wms-a", ("a", "b"), info_lag=info_lag),
                BrokerConfig("wms-b", ("c",), info_lag=info_lag),
            ),
        )

    def first_inf_times(self, grid: GridSimulator, idx: int) -> list[float]:
        """When each broker's penalty view of site ``idx`` went to inf.

        Polls through ``current_snapshot()`` — the exact read dispatch
        performs — so refreshes happen on each broker's own cadence.
        """
        times = [math.nan for _ in grid.brokers]
        horizon = grid.now + 10_000.0
        while grid.now < horizon and any(math.isnan(t) for t in times):
            grid.run_until(grid.now + 50.0)
            for k, broker in enumerate(grid.brokers):
                broker.current_snapshot()
                if math.isnan(times[k]) and math.isinf(broker._pen_list[idx]):
                    times[k] = grid.now
        return times

    def test_remote_ban_arrives_after_owner_ban(self):
        grid = GridSimulator(self.fed_config(info_lag=900.0), seed=21)
        grid.warm_up(1000.0)
        for _ in range(10):
            grid._health.observe_failure("a")  # owned by wms-a
        assert math.isinf(grid._site_by_name["a"].health_penalty)
        owner_t, remote_t = self.first_inf_times(grid, idx=0)
        assert not math.isnan(owner_t) and not math.isnan(remote_t)
        # the owner learns within one refresh; the federated broker only
        # once its lagged view of the remote site refreshes
        assert owner_t <= remote_t
        assert remote_t - owner_t <= grid.config.info_refresh + 900.0 + 100.0

    def test_single_wms_stops_feeding_banned_site(self):
        grid = GridSimulator(
            config(util=0.3, health=HealthConfig(min_observations=3)), seed=15
        )
        grid.warm_up(1000.0)
        for _ in range(10):
            grid._health.observe_failure("b")
        # let the ban propagate through one information-system refresh
        grid.run_until(grid.now + 2 * grid.config.info_refresh)
        jobs = [grid.submit(Job(runtime=30.0)) for _ in range(12)]
        grid.run_until(grid.now + 3000.0)
        placed = {j.site for j in jobs if j.site}
        assert "b" not in placed
        assert placed  # the healthy sites absorbed the traffic


class TestAgentWithClientRetries:
    """The agent and the middleware retry policy must not double-rescue."""

    def test_agent_defers_while_a_client_retry_is_pending(self):
        # a dead copy whose task still has a client-side retry backing
        # off: the sweep must neither count nor rescue it — the retry
        # policy already resubmitted on the user's behalf
        sim = Simulator()
        agent = ResubmissionAgent(
            sim, ResubmitConfig(period=100.0, backoff_base=10.0)
        )

        class RetryingTask:
            done = False
            agent_retries = 0
            retry_pending = 1

            def submit_copy(self):
                raise AssertionError(
                    "the agent must defer to the pending client retry"
                )

        task = RetryingTask()
        dead = Job(runtime=1.0)
        dead.state = JobState.LOST
        agent.watch(task, dead)
        agent.start()
        sim.run_until(1_000.0)
        assert agent.detected == 0 and agent.resubmissions == 0
        assert task.agent_retries == 0
        # the client gives up: the very next sweep takes over
        task.retry_pending = 0
        rescued = []
        task.submit_copy = lambda: rescued.append(1)
        sim.run_until(2_000.0)
        assert agent.detected == 1 and agent.resubmissions == 1
        assert task.agent_retries == 1 and rescued == [1]

    @pytest.mark.parametrize("wms_engine", ["batched", "event"])
    def test_agent_composes_with_retry_and_failover(self, wms_engine):
        from repro.gridsim import (
            RetryPolicy,
            SubmitFaultConfig,
            audit_conservation,
        )
        from repro.gridsim.client import launch_task

        cfg = config(
            util=0.3,
            wms_engine=wms_engine,
            faults=FaultModel(p_lost=0.15, p_stuck=0.0),
            brokers=(
                BrokerConfig(name="wms-a", sites=("a", "b")),
                BrokerConfig(name="wms-b", sites=("c",)),
            ),
            submit_faults=SubmitFaultConfig(p_fail=0.4, p_landed=0.5),
            retry=RetryPolicy(max_attempts=3, backoff_base=60.0),
            resubmit=ResubmitConfig(period=120.0, backoff_base=30.0),
        )
        grid = GridSimulator(cfg, seed=17)
        grid.warm_up(1_800.0)
        grid.enable_task_ledger()
        results: list = []
        tasks = [
            launch_task(
                grid, SingleResubmission(t_inf=30_000.0), 120.0, results
            )
            for _ in range(15)
        ]
        grid.run_until(grid.now + 8 * 3_600.0)
        for t in tasks:
            t.expire()
        # both rescue channels fired, and every copy — client-submitted,
        # middleware-retried or agent-rescued — is still accounted for
        # exactly once
        assert grid.weather_report()["resubmit"]["resubmissions"] > 0
        assert grid._mw.totals()["submits"] > len(tasks)
        audit_conservation(grid).verify()
        # the two rescue channels keep disjoint books: the agent's per-task
        # budget holds, and every grid submission traces back to a client
        # attempt (a minted-but-settled duplicate sibling consumes a ledger
        # slot without an attempt, so jobs_used may exceed the attempts)
        assert sum(t.client_attempts for t in tasks) == grid.jobs_submitted
        for t in tasks:
            assert t.agent_retries <= 3
            assert t.client_attempts >= 1
            assert not t.retry_pending  # settled tasks left nothing armed
