"""Cross-validation of the vectorised strategies against the printed equations."""

import numpy as np
import pytest

from repro.core.paper_equations import (
    eq1_expectation,
    eq2_std,
    eq3_expectation,
    eq4_std,
    eq5_union_expectation,
    union_cdf_of_j,
)
from repro.core.strategies import (
    delayed_moments,
    multiple_moments,
    single_moments,
)

TIMEOUTS = (250.0, 500.0, 1000.0, 2000.0)


class TestEq1Eq2:
    @pytest.mark.parametrize("t_inf", TIMEOUTS)
    def test_eq1_matches_geometric_derivation(self, gridded, t_inf):
        assert eq1_expectation(gridded, t_inf) == pytest.approx(
            single_moments(gridded, t_inf).expectation, rel=1e-9
        )

    @pytest.mark.parametrize("t_inf", TIMEOUTS)
    def test_eq2_matches_geometric_derivation(self, gridded, t_inf):
        # the paper's printed Eq. 2 is algebraically identical to the
        # direct E[J^2] expansion — this is the identity proved in DESIGN.md
        assert eq2_std(gridded, t_inf) == pytest.approx(
            single_moments(gridded, t_inf).std, rel=1e-6
        )

    def test_eq1_infinite_below_support(self, gridded):
        assert np.isinf(eq1_expectation(gridded, 50.0))
        assert np.isinf(eq2_std(gridded, 50.0))


class TestEq3Eq4:
    @pytest.mark.parametrize("b", (1, 2, 5, 10))
    def test_eq3_matches_implementation(self, gridded, b):
        assert eq3_expectation(gridded, b, 800.0) == pytest.approx(
            multiple_moments(gridded, b, 800.0).expectation, rel=1e-9
        )

    @pytest.mark.parametrize("b", (1, 2, 5))
    def test_eq4_matches_implementation(self, gridded, b):
        assert eq4_std(gridded, b, 800.0) == pytest.approx(
            multiple_moments(gridded, b, 800.0).std, rel=1e-6
        )

    def test_eq3_b1_equals_eq1(self, gridded):
        assert eq3_expectation(gridded, 1, 600.0) == pytest.approx(
            eq1_expectation(gridded, 600.0), rel=1e-12
        )

    def test_b_validation(self, gridded):
        with pytest.raises(ValueError):
            eq3_expectation(gridded, 0, 500.0)
        with pytest.raises(ValueError):
            eq4_std(gridded, 0, 500.0)


class TestEq5Union:
    """The printed Eq. 5 carries a union-bound slip (DESIGN.md errata)."""

    def test_union_cdf_monotone(self, gridded):
        f_j = union_cdf_of_j(gridded, 400.0, 600.0)
        assert (np.diff(f_j) >= -1e-12).all()
        assert f_j[0] == pytest.approx(0.0, abs=1e-12)

    def test_union_cdf_overcounts_mass(self, gridded):
        # the spurious +F̃(t0)·F̃(u) term makes the union F_J dominate the
        # correct one (strictly, wherever the overlap windows are active)
        from repro.core.strategies import delayed_survival

        t0, t_inf = 400.0, 600.0
        correct = 1.0 - delayed_survival(gridded, t0, t_inf)
        union = union_cdf_of_j(gridded, t0, t_inf)
        assert (union >= correct - 1e-9).all()
        assert union.max() > correct.max() - 1e-12

    def test_union_expectation_detectably_wrong_but_close(self, gridded):
        # the union slip shifts E_J by a few percent — detectable, yet
        # small enough that the paper's tables remain meaningful
        t0, t_inf = 400.0, 600.0
        truth = delayed_moments(gridded, t0, t_inf).expectation
        union = eq5_union_expectation(gridded, t0, t_inf)
        assert abs(union - truth) / truth > 1e-3  # the slip is real
        assert union == pytest.approx(truth, rel=0.1)  # and bounded

    def test_union_matches_exactly_when_degenerate(self, gridded):
        # at t_inf = t0 the overlap window vanishes and so does the slip
        truth = delayed_moments(gridded, 500.0, 500.0).expectation
        union = eq5_union_expectation(gridded, 500.0, 500.0)
        assert union == pytest.approx(truth, rel=5e-3)

    def test_validation(self, gridded):
        with pytest.raises(ValueError):
            union_cdf_of_j(gridded, 400.0, 900.0)
