"""Shared fixtures: fast latency models and synthesized reference traces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import LatencyModel
from repro.distributions.parametric import LogNormal
from repro.distributions.shifted import ShiftedDistribution
from repro.traces.paper import synthesize_week
from repro.util.grids import TimeGrid


@pytest.fixture(scope="session")
def lognormal_model() -> LatencyModel:
    """A paper-like heavy-tailed model: 100 s floor + log-normal body, ρ=5%."""
    dist = ShiftedDistribution(LogNormal(mu=5.5, sigma=1.0), shift=100.0)
    return LatencyModel(distribution=dist, rho=0.05, name="test-lognormal")


@pytest.fixture(scope="session")
def gridded(lognormal_model):
    """The same model on a coarse grid — fast enough for sweeps in tests."""
    return lognormal_model.on_grid(TimeGrid(t_max=8000.0, dt=2.0))


@pytest.fixture(scope="session")
def faultless_model() -> LatencyModel:
    """No-outlier variant (ρ=0) for edge-case tests."""
    dist = ShiftedDistribution(LogNormal(mu=5.5, sigma=1.0), shift=100.0)
    return LatencyModel(distribution=dist, rho=0.0, name="test-faultless")


@pytest.fixture(scope="session")
def gridded_faultless(faultless_model):
    return faultless_model.on_grid(TimeGrid(t_max=8000.0, dt=2.0))


@pytest.fixture(scope="session")
def trace_2006():
    """A synthesized 2006-IX trace set (the paper's main dataset)."""
    return synthesize_week("2006-IX", seed=7)


@pytest.fixture(scope="session")
def gridded_2006(trace_2006):
    """Empirical gridded model of the synthesized 2006-IX trace."""
    return trace_2006.to_latency_model().on_grid(TimeGrid(t_max=10_000.0, dt=2.0))


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
