"""Trace-replay bridge: SWF/GWF workloads through the background lanes.

The contract: a parsed trace's (arrival, runtime) arrays stream through
the site exactly like a synthetic background stream — chunked, lazily
committed on the vector lane, Job-per-arrival on the event oracle — and
both engines realise the identical queueing process.  The round-trip
test drives the bundled ``tests/data/toy.swf`` through parse → replay →
telemetry and pins the starts against a hand-rolled Lindley recurrence.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np
import pytest

from repro.gridsim import (
    ComputingElement,
    Simulator,
    TraceReplayLoad,
    VectorComputingElement,
    replay_arrays_from_trace,
)
from repro.gridsim.fairshare import FairShareVectorComputingElement
from repro.traces.gwf import read_gwf_workload, write_gwf
from repro.traces.swf import read_swf_workload

DATA = Path(__file__).parent / "data"
TOY = DATA / "toy.swf"


def lindley_starts(arrivals: np.ndarray, runtimes: np.ndarray, n_cores: int):
    """Reference FIFO starts over an n-core pool (heapless, O(n²) fine)."""
    free = [0.0] * n_cores
    starts = []
    for a, r in zip(arrivals, runtimes):
        k = min(range(n_cores), key=lambda i: free[i])
        s = max(a, free[k])
        starts.append(s)
        free[k] = s + r
    return np.asarray(starts)


class TestWorkloadParsing:
    def test_toy_swf_drops_unreplayable_jobs(self):
        arrivals, runtimes = read_swf_workload(TOY)
        # 12 records, 2 with RunTime -1 dropped
        assert arrivals.size == runtimes.size == 10
        assert arrivals[0] == 0.0
        assert (np.diff(arrivals) >= 0.0).all()
        assert (runtimes > 0.0).all()
        # record #2 (submit 10, run 45) survives the rebase at its offset
        assert 10.0 in arrivals
        assert 45.0 in runtimes

    def test_gwf_workload_roundtrip_parses_back(self, trace_2006):
        buf = io.StringIO()
        write_gwf(trace_2006, buf)
        buf.seek(0)
        with pytest.raises(ValueError, match="no replayable"):
            # probe traces carry RunTime 0 — nothing replayable, and the
            # parser says so instead of replaying empty arrays
            read_gwf_workload(buf)

    def test_gwf_workload_arrays(self, tmp_path):
        gwf = tmp_path / "mini.gwf"
        gwf.write_text(
            "# mini GWF\n"
            "0 5 1 30 1 -1 -1 -1 -1 -1 1\n"
            "1 0 2 60 1 -1 -1 -1 -1 -1 1\n"
            "2 9 0 -1 1 -1 -1 -1 -1 -1 0\n",
            encoding="utf-8",
        )
        arrivals, runtimes = read_gwf_workload(gwf)
        np.testing.assert_array_equal(arrivals, [0.0, 5.0])
        np.testing.assert_array_equal(runtimes, [60.0, 30.0])

    def test_format_autodetection(self, tmp_path):
        a1, r1 = replay_arrays_from_trace(TOY)
        a2, r2 = replay_arrays_from_trace(TOY, fmt="swf")
        np.testing.assert_array_equal(a1, a2)
        np.testing.assert_array_equal(r1, r2)
        # extensionless file sniffs the comment convention
        anon = tmp_path / "trace.dat"
        anon.write_text("# gwf style\n0 0 1 30 1 -1 -1 -1 -1 -1 1\n")
        arr, run = replay_arrays_from_trace(anon)
        assert arr.size == 1 and run[0] == 30.0
        with pytest.raises(ValueError, match="unknown trace format"):
            replay_arrays_from_trace(TOY, fmt="csv")


class TestReplayRoundTrip:
    def test_starts_match_lindley_reference(self):
        arrivals, runtimes = read_swf_workload(TOY)
        sim = Simulator()
        site = VectorComputingElement("replay", 2, sim)
        load = TraceReplayLoad(site, sim, arrivals, runtimes, chunk_size=4)
        load.start()
        sim.run_until(10_000.0)
        ref = lindley_starts(arrivals, runtimes, 2)
        assert load.exhausted
        assert load.jobs_generated == arrivals.size
        assert site.jobs_started == arrivals.size
        # all replayed work has drained; completions match starts
        assert site.jobs_completed == arrivals.size
        assert site.busy_cores == 0
        # the site's busy time equals the trace demand: spot-check the
        # final makespan against the reference recurrence
        assert sim.now >= (ref + runtimes).max()

    @pytest.mark.parametrize("n_cores", [1, 3])
    def test_engine_equivalence(self, n_cores):
        arrivals, runtimes = read_swf_workload(TOY)
        fingerprints = []
        for cls in (VectorComputingElement, ComputingElement):
            sim = Simulator()
            site = cls("replay", n_cores, sim)
            load = TraceReplayLoad(site, sim, arrivals, runtimes, chunk_size=3)
            load.start()
            points = []
            for t in (30.0, 75.0, 120.0, 400.0, 10_000.0):
                sim.run_until(t)
                points.append(
                    (site.queue_length, site.busy_cores, site.jobs_started)
                )
            fingerprints.append(points)
        assert fingerprints[0] == fingerprints[1]

    def test_replay_into_fairshare_site_charges_vo(self):
        arrivals, runtimes = read_swf_workload(TOY)
        sim = Simulator()
        site = FairShareVectorComputingElement(
            "fs", 2, sim, vo_shares=(("biomed", 0.5), ("atlas", 0.5))
        )
        load = TraceReplayLoad(site, sim, arrivals, runtimes, vo="atlas")
        load.start()
        sim.run_until(10_000.0)
        shares = site.usage_shares()
        assert shares["atlas"] == pytest.approx(1.0)
        assert shares["biomed"] == 0.0

    def test_scaling_and_offset(self):
        sim = Simulator()
        site = VectorComputingElement("s", 1, sim)
        load = TraceReplayLoad(
            site,
            sim,
            [0.0, 10.0],
            [4.0, 4.0],
            time_scale=2.0,
            runtime_scale=0.5,
            offset=100.0,
        )
        load.start()
        sim.run_until(500.0)
        # arrivals at 100 and 120, runtimes 2.0 each
        assert site.jobs_started == 2
        assert load.jobs_generated == 2

    def test_validation(self):
        sim = Simulator()
        site = VectorComputingElement("s", 1, sim)
        with pytest.raises(ValueError, match="at least one arrival"):
            TraceReplayLoad(site, sim, [], [])
        with pytest.raises(ValueError, match="sorted"):
            TraceReplayLoad(site, sim, [5.0, 1.0], [1.0, 1.0])
        with pytest.raises(ValueError, match="runtimes must be > 0"):
            TraceReplayLoad(site, sim, [0.0], [0.0])
        with pytest.raises(ValueError, match="arrivals but"):
            TraceReplayLoad(site, sim, [0.0, 1.0], [1.0])
        load = TraceReplayLoad(site, sim, [0.0], [1.0])
        load.start()
        with pytest.raises(RuntimeError, match="already started"):
            load.start()
