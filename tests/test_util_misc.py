"""Tests for validation helpers, RNG management, tables and series."""

import numpy as np
import pytest

from repro.util.rng import as_rng, spawn_rngs
from repro.util.series import Series, SeriesBundle
from repro.util.tables import Table, format_float, format_percent, format_seconds
from repro.util.validation import (
    check_finite,
    check_in_range,
    check_nonnegative,
    check_positive,
    check_probability,
)


class TestValidation:
    def test_check_finite_accepts_ints(self):
        assert check_finite("x", 3) == 3.0

    def test_check_finite_rejects_nan_inf(self):
        with pytest.raises(ValueError):
            check_finite("x", float("nan"))
        with pytest.raises(ValueError):
            check_finite("x", float("inf"))

    def test_check_finite_rejects_non_numeric(self):
        with pytest.raises(TypeError):
            check_finite("x", "abc")

    def test_check_positive(self):
        assert check_positive("x", 0.1) == 0.1
        with pytest.raises(ValueError, match="must be > 0"):
            check_positive("x", 0.0)

    def test_check_nonnegative(self):
        assert check_nonnegative("x", 0.0) == 0.0
        with pytest.raises(ValueError, match=">= 0"):
            check_nonnegative("x", -1e-9)

    def test_check_probability(self):
        assert check_probability("p", 0.0) == 0.0
        assert check_probability("p", 1.0) == 1.0
        with pytest.raises(ValueError):
            check_probability("p", 1.5)

    def test_check_in_range_inclusive_flags(self):
        assert check_in_range("x", 1.0, 1.0, 2.0) == 1.0
        with pytest.raises(ValueError):
            check_in_range("x", 1.0, 1.0, 2.0, inclusive=(False, True))
        with pytest.raises(ValueError):
            check_in_range("x", 2.0, 1.0, 2.0, inclusive=(True, False))
        assert check_in_range("x", 1.5, 1.0, 2.0, inclusive=(False, False)) == 1.5

    def test_error_messages_name_the_argument(self):
        with pytest.raises(ValueError, match="timeout"):
            check_positive("timeout", -1)


class TestRng:
    def test_as_rng_accepts_none_int_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)
        assert isinstance(as_rng(42), np.random.Generator)
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_as_rng_accepts_seedsequence(self):
        seq = np.random.SeedSequence(7)
        assert isinstance(as_rng(seq), np.random.Generator)

    def test_same_seed_same_stream(self):
        a = as_rng(99).random(5)
        b = as_rng(99).random(5)
        np.testing.assert_array_equal(a, b)

    def test_spawn_deterministic(self):
        xs = [g.random() for g in spawn_rngs(1, 3)]
        ys = [g.random() for g in spawn_rngs(1, 3)]
        assert xs == ys

    def test_spawn_streams_differ(self):
        a, b = spawn_rngs(5, 2)
        assert a.random() != b.random()

    def test_spawn_from_generator(self):
        gen = np.random.default_rng(3)
        children = spawn_rngs(gen, 4)
        assert len(children) == 4
        vals = {g.random() for g in children}
        assert len(vals) == 4

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)


class TestFormatting:
    def test_format_float(self):
        assert format_float(1.234, 2) == "1.23"
        assert format_float(float("nan")) == ""
        assert format_float(None) == ""

    def test_format_seconds_paper_style(self):
        assert format_seconds(471.2) == "471s"
        assert format_seconds(None) == ""

    def test_format_percent_signed(self):
        assert format_percent(-0.334) == "-33.4%"
        assert format_percent(0.07, 0) == "+7%"


class TestTable:
    def make(self):
        t = Table(title="demo", columns=["week", "EJ", "cost"])
        t.add_row("2006-IX", 471.0, 1.0)
        t.add_row("2007-36", 510.0, 1.001)
        return t

    def test_add_row_arity_check(self):
        t = self.make()
        with pytest.raises(ValueError, match="columns"):
            t.add_row("x", 1.0)

    def test_column_access(self):
        t = self.make()
        assert t.column("week") == ["2006-IX", "2007-36"]
        with pytest.raises(KeyError):
            t.column("nope")

    def test_as_dicts(self):
        t = self.make()
        assert t.as_dicts()[0] == {"week": "2006-IX", "EJ": 471.0, "cost": 1.0}

    def test_render_contains_everything(self):
        text = self.make().render()
        assert "demo" in text
        assert "2006-IX" in text
        assert "cost" in text
        # separator line present
        assert any(set(line) <= {"-", "+"} for line in text.splitlines())

    def test_render_aligns_columns(self):
        lines = self.make().render().splitlines()
        header, sep, row1 = lines[1], lines[2], lines[3]
        assert len(header) == len(sep) == len(row1)

    def test_extend(self):
        t = Table(title="x", columns=["a"])
        t.extend([[1], [2]])
        assert len(t.rows) == 2

    def test_max_width(self):
        text = self.make().render(max_width=10)
        assert all(len(line) <= 10 for line in text.splitlines())


class TestSeries:
    def test_shape_validation(self):
        with pytest.raises(ValueError, match="equal-length"):
            Series("s", np.arange(3), np.arange(4))

    def test_min_helpers(self):
        s = Series("s", np.array([1.0, 2.0, 3.0]), np.array([5.0, 1.0, 9.0]))
        assert s.y_min == 1.0
        assert s.argmin_x == 2.0

    def test_sample_keeps_endpoints(self):
        s = Series("s", np.arange(100.0), np.arange(100.0) ** 2)
        sub = s.sample(5)
        assert len(sub) <= 5
        assert sub.x[0] == 0.0
        assert sub.x[-1] == 99.0

    def test_sample_noop_when_small(self):
        s = Series("s", np.arange(3.0), np.arange(3.0))
        assert s.sample(10) is s

    def test_to_dict(self):
        s = Series("s", np.array([1.0]), np.array([2.0]))
        assert s.to_dict() == {"label": "s", "x": [1.0], "y": [2.0]}

    def test_bundle_get_and_labels(self):
        b = SeriesBundle(title="t", x_label="x", y_label="y")
        b.add(Series("a", np.arange(2.0), np.arange(2.0)))
        b.add(Series("b", np.arange(2.0), np.arange(2.0)))
        assert b.labels == ["a", "b"]
        assert b.get("b").label == "b"
        with pytest.raises(KeyError):
            b.get("c")
        assert len(b) == 2

    def test_bundle_render_mentions_axes(self):
        b = SeriesBundle(title="fig", x_label="timeout", y_label="EJ")
        b.add(Series("a", np.arange(30.0), np.arange(30.0)))
        text = b.render(points=5)
        assert "timeout" in text and "EJ" in text and "fig" in text
