"""Tests for the parametric families and combinators."""

import numpy as np
import pytest

from repro.distributions import (
    EmpiricalDistribution,
    Exponential,
    Gamma,
    LogLogistic,
    LogNormal,
    MixtureDistribution,
    Pareto,
    ShiftedDistribution,
    TruncatedDistribution,
    Weibull,
)

ALL_FAMILIES = [
    LogNormal(mu=5.0, sigma=1.2),
    Weibull(shape=0.8, scale=400.0),
    Gamma(shape=1.5, scale=300.0),
    Exponential(rate=1 / 500.0),
    Pareto(alpha=2.5, scale=600.0),
    LogLogistic(shape=2.0, scale=350.0),
]


@pytest.mark.parametrize("dist", ALL_FAMILIES, ids=lambda d: d.family)
class TestCommonProtocol:
    def test_cdf_monotone_and_bounded(self, dist):
        t = np.linspace(0, 50_000, 500)
        c = np.asarray(dist.cdf(t))
        assert (np.diff(c) >= -1e-12).all()
        assert c[0] == pytest.approx(0.0, abs=1e-9)
        assert ((c >= 0) & (c <= 1)).all()

    def test_cdf_zero_below_support(self, dist):
        assert dist.cdf(-10.0) == 0.0
        assert dist.pdf(-10.0) == 0.0

    def test_sf_complements_cdf(self, dist):
        t = np.array([10.0, 100.0, 1000.0])
        np.testing.assert_allclose(
            np.asarray(dist.sf(t)) + np.asarray(dist.cdf(t)), 1.0, atol=1e-12
        )

    def test_pdf_integrates_to_survival_mass(self, dist):
        # start above 0: shape<1 Weibull/Gamma densities diverge at the origin
        eps = 1e-3
        t = np.linspace(eps, 200_000, 400_001)
        total = np.trapezoid(np.asarray(dist.pdf(t)), t)
        expected = float(dist.cdf(200_000.0)) - float(dist.cdf(eps))
        assert total == pytest.approx(expected, abs=2e-2)

    def test_ppf_inverts_cdf(self, dist):
        q = np.array([0.1, 0.5, 0.9])
        np.testing.assert_allclose(np.asarray(dist.cdf(dist.ppf(q))), q, atol=1e-9)

    def test_median_is_half_quantile(self, dist):
        assert dist.median() == pytest.approx(float(dist.ppf(0.5)), rel=1e-9)

    def test_rvs_deterministic_and_positive(self, dist):
        a = dist.rvs(100, rng=5)
        b = dist.rvs(100, rng=5)
        np.testing.assert_array_equal(a, b)
        assert (a >= 0).all()

    def test_rvs_mean_tracks_analytic_mean(self, dist):
        mean = dist.mean()
        if not np.isfinite(mean):
            pytest.skip("infinite-mean family")
        samples = dist.rvs(200_000, rng=11)
        assert samples.mean() == pytest.approx(mean, rel=0.1)

    def test_describe_mentions_family(self, dist):
        assert dist.family in dist.describe()

    def test_params_roundtrip_type(self, dist):
        params = dist.params()
        assert params
        assert all(isinstance(v, float) for v in params.values())


class TestLogNormal:
    def test_from_mean_std(self):
        d = LogNormal.from_mean_std(mean=570.0, std=886.0)
        assert d.mean() == pytest.approx(570.0, rel=1e-9)
        assert d.std() == pytest.approx(886.0, rel=1e-9)

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            LogNormal(mu=1.0, sigma=0.0)

    def test_known_median(self):
        d = LogNormal(mu=np.log(300.0), sigma=0.7)
        assert d.median() == pytest.approx(300.0, rel=1e-9)


class TestParetoTail:
    def test_infinite_mean_when_alpha_below_one(self):
        d = Pareto(alpha=0.8, scale=100.0)
        assert d.mean() == np.inf
        assert d.var() == np.inf

    def test_survival_power_law(self):
        d = Pareto(alpha=2.0, scale=100.0)
        assert float(d.sf(100.0)) == pytest.approx(0.25)


class TestExponential:
    def test_memoryless_mean(self):
        d = Exponential(rate=0.01)
        assert d.mean() == pytest.approx(100.0)
        assert d.std() == pytest.approx(100.0)


class TestShifted:
    def base(self):
        return ShiftedDistribution(Exponential(rate=0.01), shift=50.0)

    def test_no_mass_below_shift(self):
        d = self.base()
        assert d.cdf(49.9) == 0.0
        assert d.pdf(10.0) == 0.0
        assert float(d.sf(0.0)) == 1.0

    def test_mean_shifts(self):
        assert self.base().mean() == pytest.approx(150.0)

    def test_var_unchanged(self):
        assert self.base().var() == pytest.approx(100.0**2)

    def test_second_moment(self):
        d = self.base()
        # E[(50+X)^2] = 2500 + 2*50*100 + 2*100^2
        assert d._moment(2) == pytest.approx(2500 + 10_000 + 20_000, rel=1e-6)

    def test_ppf_and_rvs_respect_shift(self):
        d = self.base()
        assert float(d.ppf(0.0)) == pytest.approx(50.0)
        assert (d.rvs(1000, rng=1) >= 50.0).all()

    def test_median(self):
        d = self.base()
        assert d.median() == pytest.approx(50.0 + 100.0 * np.log(2), rel=1e-9)

    def test_rejects_negative_shift(self):
        with pytest.raises(ValueError):
            ShiftedDistribution(Exponential(rate=1.0), shift=-1.0)

    def test_rejects_non_distribution(self):
        with pytest.raises(TypeError):
            ShiftedDistribution("nope", shift=1.0)


class TestTruncated:
    def base(self):
        return TruncatedDistribution(Exponential(rate=0.01), upper=200.0)

    def test_cdf_reaches_one_at_upper(self):
        d = self.base()
        assert float(d.cdf(200.0)) == pytest.approx(1.0)
        assert float(d.cdf(1e9)) == pytest.approx(1.0)

    def test_renormalised_density(self):
        d = self.base()
        t = np.linspace(0, 200, 20_001)
        assert np.trapezoid(np.asarray(d.pdf(t)), t) == pytest.approx(1.0, abs=1e-4)

    def test_density_zero_beyond_upper(self):
        assert self.base().pdf(201.0) == 0.0

    def test_truncated_mean_below_base_mean(self):
        assert self.base().mean() < 100.0

    def test_samples_within_support(self):
        s = self.base().rvs(5000, rng=3)
        assert (s >= 0).all() and (s <= 200.0).all()

    def test_rejects_empty_mass(self):
        with pytest.raises(ValueError, match="no mass"):
            TruncatedDistribution(ShiftedDistribution(Exponential(1.0), 50.0), upper=10.0)

    def test_exact_truncated_exponential_mean(self):
        # E[X | X<=u] = 1/λ - u·e^{-λu}/(1-e^{-λu})
        lam, u = 0.01, 200.0
        expected = 1 / lam - u * np.exp(-lam * u) / (1 - np.exp(-lam * u))
        assert self.base().mean() == pytest.approx(expected, rel=1e-4)


class TestMixture:
    def make(self):
        return MixtureDistribution(
            [Exponential(rate=0.01), Exponential(rate=0.001)], weights=[0.7, 0.3]
        )

    def test_weight_normalisation(self):
        m = MixtureDistribution(
            [Exponential(1.0), Exponential(2.0)], weights=[2.0, 2.0]
        )
        np.testing.assert_allclose(m.weights, [0.5, 0.5])

    def test_mean_is_weighted(self):
        assert self.make().mean() == pytest.approx(0.7 * 100 + 0.3 * 1000)

    def test_cdf_is_weighted(self):
        m = self.make()
        t = 150.0
        expected = 0.7 * (1 - np.exp(-0.01 * t)) + 0.3 * (1 - np.exp(-0.001 * t))
        assert float(m.cdf(t)) == pytest.approx(expected, rel=1e-9)

    def test_ppf_inverts_cdf(self):
        m = self.make()
        for q in (0.05, 0.5, 0.95):
            assert float(m.cdf(m.ppf(q))) == pytest.approx(q, abs=1e-7)

    def test_rvs_mean(self):
        m = self.make()
        s = m.rvs(200_000, rng=9)
        assert s.mean() == pytest.approx(m.mean(), rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            MixtureDistribution([], [])
        with pytest.raises(ValueError, match="weights"):
            MixtureDistribution([Exponential(1.0)], [1.0, 2.0])
        with pytest.raises(ValueError, match="non-negative"):
            MixtureDistribution([Exponential(1.0), Exponential(2.0)], [1.0, -1.0])
        with pytest.raises(ValueError, match="zero"):
            MixtureDistribution([Exponential(1.0)], [0.0])
        with pytest.raises(TypeError):
            MixtureDistribution(["x"], [1.0])

    def test_infinite_component_mean_propagates(self):
        m = MixtureDistribution(
            [Exponential(1.0), Pareto(alpha=0.5, scale=10.0)], weights=[0.5, 0.5]
        )
        assert m.mean() == np.inf


class TestEmpirical:
    def test_requires_samples(self):
        with pytest.raises(ValueError):
            EmpiricalDistribution(np.array([]))

    def test_rejects_bad_samples(self):
        with pytest.raises(ValueError, match="finite"):
            EmpiricalDistribution(np.array([1.0, np.inf]))
        with pytest.raises(ValueError, match="non-negative"):
            EmpiricalDistribution(np.array([1.0, -2.0]))

    def test_step_ecdf_values(self):
        d = EmpiricalDistribution(np.array([1.0, 2.0, 3.0, 4.0]), smooth=False)
        assert float(d.cdf(0.5)) == 0.0
        assert float(d.cdf(2.0)) == 0.5
        assert float(d.cdf(4.0)) == 1.0
        assert float(d.cdf(-1.0)) == 0.0

    def test_smooth_cdf_interpolates(self):
        d = EmpiricalDistribution(np.array([0.0, 10.0]), smooth=True)
        assert 0.0 < float(d.cdf(5.0)) < 1.0
        assert float(d.cdf(10.0)) == 1.0

    def test_smooth_cdf_monotone(self):
        rng = np.random.default_rng(0)
        d = EmpiricalDistribution(rng.lognormal(5, 1, size=500))
        t = np.linspace(0, 3000, 1000)
        assert (np.diff(np.asarray(d.cdf(t))) >= -1e-12).all()

    def test_moments_are_sample_moments(self):
        x = np.array([1.0, 2.0, 3.0, 10.0])
        d = EmpiricalDistribution(x)
        assert d.mean() == pytest.approx(x.mean())
        assert d.std() == pytest.approx(x.std())
        assert d.median() == pytest.approx(np.median(x))

    def test_ppf_levels_validated(self):
        d = EmpiricalDistribution(np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            d.ppf(1.5)

    def test_step_rvs_draws_from_samples(self):
        x = np.array([5.0, 7.0, 11.0])
        d = EmpiricalDistribution(x, smooth=False)
        s = d.rvs(500, rng=2)
        assert set(np.unique(s)) <= set(x)

    def test_smooth_rvs_within_range(self):
        x = np.array([5.0, 7.0, 11.0])
        d = EmpiricalDistribution(x, smooth=True)
        s = d.rvs(500, rng=2)
        assert (s >= 0.0).all() and (s <= 11.0).all()

    def test_duplicate_samples_handled(self):
        d = EmpiricalDistribution(np.array([2.0, 2.0, 2.0, 5.0]), smooth=True)
        assert float(d.cdf(2.0)) == pytest.approx(0.75)

    def test_samples_view_readonly(self):
        d = EmpiricalDistribution(np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            d.samples[0] = 99.0

    def test_n_samples(self):
        assert EmpiricalDistribution(np.ones(7)).n_samples == 7
