"""Tests for the experiment harness: every registered artifact runs and
reproduces the paper's qualitative claims."""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentResult,
    get_context,
    list_experiments,
    run_experiment,
)
from repro.experiments.context import ReproContext
from repro.traces.paper import PAPER_TABLE1


@pytest.fixture(scope="module")
def ctx() -> ReproContext:
    # dt=2 halves the sweeps' cost; statistics are unaffected at test tolerance
    return ReproContext(seed=2009, dt=2.0)


class TestRegistry:
    def test_all_artifacts_registered(self):
        ids = list_experiments()
        for required in (
            "fig1", "fig2", "fig3", "fig5", "fig6", "fig8",
            "table1", "table2", "table3", "table4", "table5", "table6",
            "val-mc", "val-des", "abl-eq5", "abl-adopt",
        ):
            assert required in ids

    def test_unknown_id_raises(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_experiment("fig99")

    def test_get_context_cached(self):
        assert get_context(seed=1, dt=4.0) is get_context(seed=1, dt=4.0)


class TestContext:
    def test_weeks_order_matches_table1(self, ctx):
        assert ctx.weeks == list(PAPER_TABLE1)

    def test_models_cached(self, ctx):
        assert ctx.model("2006-IX") is ctx.model("2006-IX")
        assert ctx.single_optimum("2006-IX") is ctx.single_optimum("2006-IX")


class TestFig1(object):
    def test_structure_and_claims(self, ctx):
        res = run_experiment("fig1", ctx=ctx)
        assert isinstance(res, ExperimentResult)
        (bundle,) = res.figures
        f_r = bundle.get("F_R")
        f_t = bundle.get("F~_R = (1-rho) F_R")
        # F~ = (1-rho) F pointwise; F~ saturates strictly below F
        rho = ctx.model("2006-IX").rho
        np.testing.assert_allclose(f_t.y, (1 - rho) * f_r.y, rtol=1e-9)
        assert f_t.y.max() < f_r.y.max()


class TestTable1:
    def test_rows_and_qualitative_claims(self, ctx):
        res = run_experiment("table1", ctx=ctx)
        (table,) = res.tables
        assert len(table.rows) == 13
        # qualitative: E_J of the same order as mean<1e4, far below bounded
        for row in table.as_dicts():
            e_j = float(row["E_J"].rstrip("s"))
            mean_less = float(row["mean <10^5"].rstrip("s"))
            mean_with = float(row["mean with 10^5"].rstrip("s"))
            assert e_j < mean_with
            assert 0.4 * mean_less < e_j < 1.6 * mean_less

    def test_sigma_reduction_majority(self, ctx):
        res = run_experiment("table1", ctx=ctx)
        (table,) = res.tables
        reductions = [
            row["d_sigma"].startswith("-") for row in table.as_dicts()
        ]
        assert sum(reductions) >= 10  # paper: 12 of 13 negative


class TestFig2:
    def test_profiles_ordered_by_b(self, ctx):
        res = run_experiment("fig2", ctx=ctx, b_max=5)
        (bundle,) = res.figures
        assert bundle.labels == [f"b={b}" for b in range(1, 6)]
        # larger b gives lower minimal E_J
        minima = [s.y_min for s in bundle.series]
        assert all(a > b for a, b in zip(minima, minima[1:]))

    def test_b_validation(self, ctx):
        with pytest.raises(ValueError):
            run_experiment("fig2", ctx=ctx, b_max=0)


class TestTable2:
    def test_diminishing_returns_columns(self, ctx):
        res = run_experiment("table2", ctx=ctx, b_max=8)
        (table,) = res.tables
        assert len(table.rows) == 8
        marginal = [
            float(r["dE_J/(b-1)"].rstrip("%")) for r in table.as_dicts()[1:]
        ]
        # improvements are negative and shrink in magnitude
        assert all(m < 0 for m in marginal)
        assert all(abs(a) > abs(b) for a, b in zip(marginal, marginal[1:]))


class TestFig3:
    def test_all_weeks_decreasing(self, ctx):
        res = run_experiment("fig3", ctx=ctx, b_max=5)
        ej_bundle, sj_bundle = res.figures
        assert len(ej_bundle) == 13
        for series in ej_bundle:
            assert (np.diff(series.y) <= 1e-9).all()
        for series in sj_bundle:
            assert series.y[-1] <= series.y[0]


class TestFig5:
    def test_minimum_beats_single(self, ctx):
        res = run_experiment("fig5", ctx=ctx, n_slices=4)
        (bundle,) = res.figures
        assert len(bundle) == 4
        single = ctx.single_optimum("2006-IX")
        best = min(s.y_min for s in bundle.series)
        assert best < single.e_j


class TestTable3:
    def test_all_ratios_improve_on_single(self, ctx):
        res = run_experiment("table3", ctx=ctx)
        (table,) = res.tables
        assert len(table.rows) == 10
        for row in table.as_dicts():
            assert row["delta vs single"].startswith("-")
            n_par = float(row["N_//"])
            assert 1.0 <= n_par <= 2.0


class TestFig6:
    def test_frontier_shapes(self, ctx):
        res = run_experiment("fig6", ctx=ctx, b_max=4)
        (bundle,) = res.figures
        delayed = bundle.get("delayed submission strategy")
        multi = bundle.get("multiple submissions strategy")
        # delayed occupies N < 2; multiple starts at b=1 == single E_J
        assert delayed.x.max() < 2.0
        assert multi.x.min() == 1.0
        single = ctx.single_optimum("2006-IX")
        assert multi.y[0] == pytest.approx(single.e_j, rel=1e-6)
        # multiple at b=2 beats every delayed point (paper Fig. 6)
        assert multi.y[1] < delayed.y.min()


class TestFig8:
    def test_cost_structure(self, ctx):
        res = run_experiment("fig8", ctx=ctx, b_max=4)
        (bundle,) = res.figures
        multi = bundle.get("multiple submissions strategy")
        frontier = bundle.get("delayed (cost frontier)")
        assert multi.y[0] == pytest.approx(1.0, rel=1e-6)  # b=1 == reference
        assert (np.diff(multi.y) > 0).all()  # cost increases with b
        assert frontier.y.min() < 1.0  # the win-win dip exists


class TestTable4:
    def test_blocks_and_headline(self, ctx):
        res = run_experiment("table4", ctx=ctx)
        delayed_table, multi_table = res.tables
        assert len(delayed_table.rows) == 10
        assert len(multi_table.rows) == 14
        costs = [float(r["delta_cost"]) for r in multi_table.as_dicts()]
        assert all(a < b for a, b in zip(costs, costs[1:]))
        assert costs[-1] > 10  # b=100 is expensive (paper: 32)


class TestTable5:
    def test_structure_and_stability(self, ctx):
        res = run_experiment("table5", ctx=ctx, radius=2)
        (table,) = res.tables
        assert len(table.rows) == 12
        for row in table.as_dicts():
            cost = float(row["opt cost"])
            assert cost <= 1.01
            if row["max cost (r=5)"]:
                assert float(row["max cost (r=5)"]) >= cost - 1e-9


class TestTable6:
    def test_transfer_quality(self, ctx):
        res = run_experiment("table6", ctx=ctx)
        matrix, summary = res.tables
        assert len(summary.rows) == 7
        # own parameters are optimal within each target's column
        by_target = {}
        for row in matrix.as_dicts():
            by_target.setdefault(row["target week"], []).append(row)
        for target, rows in by_target.items():
            own = [r for r in rows if r["params from"] == target]
            assert own, target
            own_cost = float(own[0]["delta_cost"])
            best = min(float(r["delta_cost"]) for r in rows)
            assert own_cost == pytest.approx(best, abs=0.02)


class TestValidations:
    def test_val_mc_zscores_small(self, ctx):
        res = run_experiment("val-mc", ctx=ctx, n_tasks=5000)
        (table,) = res.tables
        zs = [float(r["z"]) for r in table.as_dicts()]
        assert max(zs) < 4.5

    def test_val_des_ratios_near_one(self):
        res = run_experiment("val-des", n_tasks=60, probe_days=0.6)
        (table,) = res.tables
        ratios = [float(r["ratio"]) for r in table.as_dicts()]
        assert all(0.5 < r < 2.0 for r in ratios)

    def test_eq5_discrepancy_grows_with_ratio(self, ctx):
        res = run_experiment("abl-eq5", ctx=ctx, t0_values=(300.0,),
                             ratios=(1.0, 1.5, 2.0))
        (table,) = res.tables
        errs = [abs(float(r["rel err"].rstrip("%"))) for r in table.as_dicts()]
        assert errs[0] < 0.1          # exact at ratio 1
        assert errs[2] > errs[0]      # grows with overlap

    def test_adoption_erosion(self):
        res = run_experiment("abl-adopt", fleet_sizes=(20, 300))
        (table,) = res.tables
        rows = table.as_dicts()
        burst_rows = [r for r in rows if "multiple" in r["strategy"]]
        j_small = float(burst_rows[0]["mean J"].rstrip("s"))
        j_large = float(burst_rows[-1]["mean J"].rstrip("s"))
        assert j_large > j_small  # load feedback erodes the gain

    def test_adoption_delayed_fleet_needs_context(self, ctx):
        # without a context there is no analytic model to calibrate from
        res = run_experiment("abl-adopt", fleet_sizes=(10, 20), window=3600.0)
        (table,) = res.tables
        assert not any("delayed" in r["strategy"] for r in table.as_dicts())
        # with one, the surface-calibrated delayed fleet rides along
        res = run_experiment(
            "abl-adopt", ctx=ctx, fleet_sizes=(10, 20), window=3600.0
        )
        (table,) = res.tables
        delayed = [r for r in table.as_dicts() if "delayed" in r["strategy"]]
        assert len(delayed) == 1
        assert float(delayed[0]["jobs/task"]) < 3.0  # lighter than the burst


class TestAblations:
    def test_rho_sensitivity_monotone(self, ctx):
        res = run_experiment("abl-rho", ctx=ctx, rho_values=(0.0, 0.1, 0.3))
        (table,) = res.tables
        singles = [float(r["single E_J"].rstrip("s")) for r in table.as_dicts()]
        bursts = [float(r["burst3 E_J"].rstrip("s")) for r in table.as_dicts()]
        assert singles == sorted(singles)
        assert bursts == sorted(bursts)

    def test_rho_zero_matches_faultless_body(self, ctx):
        res = run_experiment("abl-rho", ctx=ctx, rho_values=(0.0,))
        (table,) = res.tables
        e_j = float(table.rows[0][2].rstrip("s"))
        assert 200 < e_j < 1500  # sane, finite

    def test_family_sensitivity_ranks_tail_aware_families(self, ctx):
        res = run_experiment("abl-family", ctx=ctx)
        (table,) = res.tables
        gaps = {
            r["model"]: float(r["E_J vs ECDF"])
            for r in table.as_dicts()
            if r["E_J vs ECDF"] != ""
        }
        assert gaps["loglogistic"] < gaps["gamma"]
        assert min(gaps.values()) < 0.1  # someone tracks the ECDF closely

    def test_resolution_convergence(self, ctx):
        res = run_experiment("abl-grid", ctx=ctx, dt_values=(8.0, 2.0, 1.0))
        (table,) = res.tables
        e_j = [float(r["single E_J"].rstrip("s")) for r in table.as_dicts()]
        ref = e_j[-1]
        assert all(abs(e - ref) / ref < 0.02 for e in e_j)


class TestMultiVo:
    def test_small_sweep_structure_and_claims(self):
        res = run_experiment(
            "multi-vo", n_tasks=600, adoption_levels=(0.0, 0.5, 1.0)
        )
        sweep, shares = res.tables
        assert len(sweep.rows) == 3
        rows = sweep.as_dicts()
        # no adopters at 0%, no baseline column at 100%
        assert rows[0]["mean J adopters"] == ""
        assert rows[-1]["mean J biomed rest"] == ""
        # burst width 3 doubles jobs/task once half the biomed VO adopts
        assert float(rows[-1]["jobs/task"]) > float(rows[0]["jobs/task"]) + 0.5
        # adopters beat their VO's single-submission baseline
        adopters = float(rows[1]["mean J adopters"].rstrip("s"))
        baseline = float(rows[1]["mean J biomed rest"].rstrip("s"))
        assert adopters < baseline
        # fair-share usage tracks the 50/30/20 allocation per site
        for row in shares.as_dicts():
            assert float(row["biomed"].strip("+%")) == pytest.approx(50, abs=8)
        assert len(res.notes) == 4

    def test_validation(self):
        with pytest.raises(ValueError, match="n_tasks"):
            run_experiment("multi-vo", n_tasks=10)
        with pytest.raises(ValueError, match="adoption levels"):
            run_experiment("multi-vo", n_tasks=600, adoption_levels=(2.0,))
        with pytest.raises(ValueError, match="b must be"):
            run_experiment("multi-vo", n_tasks=600, b=1)


class TestGridWeather:
    def test_small_run_structure(self):
        res = run_experiment(
            "grid-weather", n_tasks=20, task_interval=60.0, warm=1800.0
        )
        frontier, telemetry = res.tables
        assert len(frontier.rows) == 6  # 3 regimes x healing on/off
        assert len(telemetry.rows) == 6
        rows = frontier.as_dicts()
        regimes = {r["regime"] for r in rows}
        assert regimes == {"calm", "storms", "black hole"}
        for row in rows:
            assert row["best U"]  # every cell elects a winner
        tel = telemetry.as_dicts()
        by_cell = {(r["regime"], r["self-healing"]): r for r in tel}
        # calm weather reports no structural damage
        assert by_cell[("calm", "off")]["outages"] == 0
        assert by_cell[("calm", "off")]["black-hole failures"] == 0
        # the hole regime records hole failures; healing resubmits
        assert int(by_cell[("black hole", "off")]["black-hole failures"]) > 0
        assert int(by_cell[("black hole", "on")]["agent resubmits"]) > 0
        assert len(res.notes) == 5
        assert any("U = E(J)" in n for n in res.notes)

    def test_validation(self):
        with pytest.raises(ValueError, match="n_tasks"):
            run_experiment("grid-weather", n_tasks=5)
        with pytest.raises(ValueError, match="job_cost"):
            run_experiment("grid-weather", job_cost=-1.0)


class TestRender:
    def test_render_includes_tables_and_notes(self, ctx):
        res = run_experiment("table3", ctx=ctx)
        text = res.render()
        assert "table3" in text
        assert "notes:" in text
        assert "Table 3" in text
