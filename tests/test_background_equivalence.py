"""Law oracle for the chunked background-load streams.

The seed implementation drew each background arrival with three scalar
RNG calls (exponential gap, thinning uniform, log-normal runtime) and one
heap event per arrival.  The chunked implementation block-draws the same
randomness; fixed-seed draw *sequences* therefore differ, so — exactly as
PR 1 did for the Monte-Carlo fast paths — the original per-arrival loop
is preserved here verbatim as the distributional oracle: same Poisson
arrival law (with and without diurnal thinning), same log-normal
runtimes, same induced utilisation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gridsim.background import BackgroundLoad
from repro.gridsim.events import Simulator
from repro.gridsim.jobs import Job
from repro.gridsim.site import ComputingElement
from repro.traces.generator import DiurnalProfile


class _SeedPerArrivalLoop:
    """The seed repo's BackgroundLoad, kept verbatim as the law oracle."""

    def __init__(
        self,
        site,
        sim,
        rng,
        *,
        utilization=0.9,
        runtime_median=3600.0,
        runtime_sigma=0.8,
        diurnal=None,
    ):
        self.site = site
        self.sim = sim
        self.rng = rng
        self.utilization = utilization
        self.runtime_median = runtime_median
        self.runtime_sigma = runtime_sigma
        self.diurnal = diurnal
        self.jobs_generated = 0
        mean_runtime = runtime_median * float(np.exp(runtime_sigma**2 / 2.0))
        self.rate = utilization * site.n_cores / mean_runtime
        self._peak_rate = self.rate * (
            1.0 + (diurnal.amplitude if diurnal is not None else 0.0)
        )

    def start(self):
        self._schedule_next()

    def _schedule_next(self):
        gap = float(self.rng.exponential(1.0 / self._peak_rate))
        self.sim.schedule(gap, self._arrival)

    def _arrival(self):
        accept = True
        if self.diurnal is not None:
            rate_now = self.rate * float(self.diurnal.factor(self.sim.now))
            accept = self.rng.random() < rate_now / self._peak_rate
        if accept:
            runtime = float(
                self.rng.lognormal(np.log(self.runtime_median), self.runtime_sigma)
            )
            job = Job(runtime=runtime, tag="background")
            job.submit_time = self.sim.now
            self.site.enqueue(job)
            self.jobs_generated += 1
        self._schedule_next()


def _run_stream(impl, seed, *, diurnal=None, duration=150_000.0, n_cores=16):
    """Run one background stream implementation; return summary stats."""
    sim = Simulator()
    site = ComputingElement("s", n_cores, sim)
    rng = np.random.default_rng(seed)
    bg = impl(
        site,
        sim,
        rng,
        utilization=0.85,
        runtime_median=1200.0,
        runtime_sigma=0.8,
        diurnal=diurnal,
    )
    bg.start()
    sim.run_until(duration)
    runtimes = np.array(
        [j.runtime for j in site.running_jobs.values()]
        + [j.runtime for j in site.queue]
    )
    return {
        "generated": bg.jobs_generated,
        "rate": bg.rate,
        "busy": site.busy_cores,
        "completed": site.jobs_completed,
        "in_system_runtimes": runtimes,
    }


SEEDS = range(20)


class TestArrivalLaw:
    @pytest.mark.parametrize("diurnal", [None, DiurnalProfile(amplitude=0.3)],
                             ids=["stationary", "diurnal"])
    def test_mean_arrival_counts_match_oracle(self, diurnal):
        """Mean arrival counts agree with the per-arrival loop within
        their combined standard error."""
        duration = 150_000.0
        old = np.array([
            _run_stream(_SeedPerArrivalLoop, s, diurnal=diurnal)["generated"]
            for s in SEEDS
        ], dtype=float)
        new = np.array([
            _run_stream(BackgroundLoad, 1000 + s, diurnal=diurnal)["generated"]
            for s in SEEDS
        ], dtype=float)
        se = np.sqrt(old.var(ddof=1) / old.size + new.var(ddof=1) / new.size)
        assert abs(old.mean() - new.mean()) < 4.0 * se + 1e-9
        # both also match the theoretical Poisson mean rate*T
        expected = _run_stream(BackgroundLoad, 0, diurnal=diurnal)["rate"] * duration
        assert old.mean() == pytest.approx(expected, rel=0.05)
        assert new.mean() == pytest.approx(expected, rel=0.05)

    def test_count_variance_is_poisson_like(self):
        """Chunked counts keep Poisson dispersion (var ≈ mean)."""
        counts = np.array([
            _run_stream(BackgroundLoad, s)["generated"] for s in range(40)
        ], dtype=float)
        # index of dispersion of a Poisson count is 1; allow generous CI
        dispersion = counts.var(ddof=1) / counts.mean()
        assert 0.5 < dispersion < 2.0

    def test_utilisation_matches_oracle(self):
        """Induced load (busy cores after a long run) agrees."""
        old = np.array([
            _run_stream(_SeedPerArrivalLoop, s)["busy"] for s in SEEDS
        ], dtype=float)
        new = np.array([
            _run_stream(BackgroundLoad, 2000 + s)["busy"] for s in SEEDS
        ], dtype=float)
        se = np.sqrt(old.var(ddof=1) / old.size + new.var(ddof=1) / new.size)
        assert abs(old.mean() - new.mean()) < 4.0 * se + 1e-9

    def test_runtime_law_matches_oracle(self):
        """Runtimes of jobs in the system follow the same log-normal."""
        old = np.concatenate([
            _run_stream(_SeedPerArrivalLoop, s)["in_system_runtimes"]
            for s in SEEDS
        ])
        new = np.concatenate([
            _run_stream(BackgroundLoad, 3000 + s)["in_system_runtimes"]
            for s in SEEDS
        ])
        lo, ln = np.log(old), np.log(new)
        se_m = np.sqrt(lo.var(ddof=1) / lo.size + ln.var(ddof=1) / ln.size)
        assert abs(lo.mean() - ln.mean()) < 4.0 * se_m
        assert ln.std(ddof=1) == pytest.approx(lo.std(ddof=1), rel=0.15)


class TestChunkMechanics:
    def test_deterministic_given_seed(self):
        a = _run_stream(BackgroundLoad, 7)
        b = _run_stream(BackgroundLoad, 7)
        assert a["generated"] == b["generated"]
        assert a["completed"] == b["completed"]

    def test_chunk_size_does_not_change_the_law(self):
        """Different chunk sizes give statistically equal streams."""
        def count(seed, chunk):
            sim = Simulator()
            site = ComputingElement("s", 16, sim)
            bg = BackgroundLoad(
                site, sim, np.random.default_rng(seed),
                utilization=0.85, runtime_median=1200.0, chunk_size=chunk,
            )
            bg.start()
            sim.run_until(150_000.0)
            return bg.jobs_generated

        small = np.array([count(s, 16) for s in SEEDS], dtype=float)
        large = np.array([count(100 + s, 2048) for s in SEEDS], dtype=float)
        se = np.sqrt(small.var(ddof=1) / small.size + large.var(ddof=1) / large.size)
        assert abs(small.mean() - large.mean()) < 4.0 * se + 1e-9

    def test_validation(self):
        sim = Simulator()
        site = ComputingElement("s", 4, sim)
        with pytest.raises(ValueError, match="chunk_size"):
            BackgroundLoad(site, sim, np.random.default_rng(0), chunk_size=0)
